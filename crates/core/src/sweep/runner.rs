//! Parallel, resumable execution of a [`SweepGrid`].
//!
//! [`run_sweep`] expands the grid, runs every not-yet-recorded cell across
//! the machine's cores (the `std::thread::scope` worker-pool pattern of the
//! evaluation matrix), and *streams* one compact JSON record per cell to
//! `<out>/sweep.jsonl` in deterministic cell order — workers may finish out
//! of order, but the writer only appends the next cell in grid order, so an
//! interrupted sweep always leaves an in-order prefix on disk. Re-running
//! with `resume = true` parses that prefix back and skips the recorded
//! cells, which makes a resumed run converge to the byte-identical artifact
//! a fresh run would have produced.
//!
//! After the cells complete, the runner post-processes all records (old and
//! new) into `pareto.json` (per-slice energy-vs-time frontiers) and
//! `sweep_summary.json`, plus a `grid.json` provenance artifact.

use std::fs;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use serde::Serialize;

use htm_power::ledger::{ComponentEnergy, ALL_COMPONENTS};
use htm_sim::topology::TopologyConfig;
use htm_sim::Cycle;
#[cfg(test)]
use htm_tcc::system::EngineKind;
use htm_tcc::system::SimError;

use crate::sim::EngineChoice;
use htm_tcc::txn::WorkloadTrace;

use super::grid::{SweepCell, SweepGrid};
use super::pareto::{
    pareto_frontiers_with, summarize_slices, SliceFrontier, SliceSummary, SweepObjective,
};
use super::{CellRecord, SCHEMA_VERSION};
use crate::checkpoint::{
    atomic_write_bytes, remove_checkpoints, validate_checkpoint_dir, CheckpointConfig,
    CheckpointError,
};
use crate::report::{to_json, to_json_compact};
use crate::sim::SimulationBuilder;

/// File name of the streamed per-cell record artifact.
pub const JSONL_NAME: &str = "sweep.jsonl";
/// File name of the Pareto-frontier artifact.
pub const PARETO_NAME: &str = "pareto.json";
/// File name of the per-slice summary artifact.
pub const SUMMARY_NAME: &str = "sweep_summary.json";
/// File name of the grid-provenance artifact.
pub const GRID_NAME: &str = "grid.json";
/// File name of the per-cell component-energy artifact.
pub const BREAKDOWN_NAME: &str = "energy_breakdown.json";

/// Everything that can go wrong while running a sweep.
#[derive(Debug)]
pub enum SweepError {
    /// The grid expanded to zero cells.
    EmptyGrid,
    /// Two cells of the grid share a key (a grid-construction bug).
    DuplicateKey(String),
    /// A cell's simulation failed; `key` is the first failing cell in
    /// deterministic grid order.
    Cell {
        /// Key of the failing cell.
        key: String,
        /// The underlying simulation error.
        source: SimError,
    },
    /// A cell's simulation panicked (a simulator bug); the panic is caught
    /// so that the sweep fails instead of deadlocking the in-order writer.
    CellPanic {
        /// Key of the panicking cell.
        key: String,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The existing `sweep.jsonl` records are not the in-order prefix of
    /// this grid's cell list (resuming with a reordered or regrown grid),
    /// so a resumed run could not converge to the fresh-run artifact.
    NonPrefixResume {
        /// 1-based line number in `sweep.jsonl`.
        line: usize,
        /// The cell key the grid expects at this position.
        expected: String,
        /// The cell key the file recorded there.
        found: String,
    },
    /// The on-disk checkpoint layer failed (`key` names the affected cell;
    /// `None` means the pre-flight scan of the checkpoint directory failed
    /// before any cell ran — e.g. it holds checkpoints of an incompatible
    /// format version, mirroring [`SweepError::SchemaMismatch`] for
    /// `sweep.jsonl`).
    Checkpoint {
        /// The cell whose checkpointing failed, if any.
        key: Option<String>,
        /// The underlying checkpoint error.
        source: CheckpointError,
    },
    /// Reading or writing an artifact failed.
    Io(std::io::Error),
    /// An existing `sweep.jsonl` line could not be parsed during resume.
    Resume {
        /// 1-based line number in `sweep.jsonl`.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// An existing `sweep.jsonl` record does not belong to this grid
    /// (resuming with a different grid than the one that wrote the file).
    ForeignRecord(String),
    /// An existing `sweep.jsonl` record was written under a different
    /// record-layout version (e.g. a pre-ledger file without the
    /// component-energy fields). Resuming would silently diverge from a
    /// fresh run's bytes, so the file must be regenerated.
    SchemaMismatch {
        /// 1-based line number in `sweep.jsonl`.
        line: usize,
        /// The `schema` field the record carries (`None`: the field is
        /// absent — a pre-versioning file).
        found: Option<u64>,
        /// The version this binary writes.
        expected: u32,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::EmptyGrid => write!(f, "the sweep grid expands to zero cells"),
            SweepError::DuplicateKey(key) => {
                write!(f, "the sweep grid produced duplicate cell key `{key}`")
            }
            SweepError::Cell { key, source } => write!(f, "sweep cell `{key}` failed: {source}"),
            SweepError::CellPanic { key, message } => {
                write!(f, "sweep cell `{key}` panicked: {message}")
            }
            SweepError::NonPrefixResume {
                line,
                expected,
                found,
            } => write!(
                f,
                "cannot resume: {JSONL_NAME} line {line} records cell `{found}` where the \
                 grid expects `{expected}` (records must be the in-order prefix of the grid)"
            ),
            SweepError::Checkpoint { key, source } => match key {
                Some(key) => write!(f, "sweep cell `{key}` checkpointing failed: {source}"),
                None => write!(f, "checkpoint directory pre-flight failed: {source}"),
            },
            SweepError::Io(e) => write!(f, "sweep artifact I/O failed: {e}"),
            SweepError::Resume { line, message } => {
                write!(f, "cannot resume: {JSONL_NAME} line {line}: {message}")
            }
            SweepError::ForeignRecord(key) => write!(
                f,
                "cannot resume: {JSONL_NAME} contains cell `{key}` which is not in this \
                 grid (was the file produced by a different grid?)"
            ),
            SweepError::SchemaMismatch {
                line,
                found,
                expected,
            } => {
                let found = found.map_or_else(
                    || "no schema version (a pre-ledger file)".to_string(),
                    |v| format!("schema version {v}"),
                );
                write!(
                    f,
                    "cannot resume: {JSONL_NAME} line {line} carries {found} but this \
                     binary writes version {expected}; the record layout changed \
                     (component-energy ledger fields) — delete the old file or re-run \
                     without --resume"
                )
            }
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Cell { source, .. } => Some(source),
            SweepError::Checkpoint { source, .. } => Some(source),
            SweepError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SweepError {
    fn from(e: std::io::Error) -> Self {
        SweepError::Io(e)
    }
}

/// The `pareto.json` artifact.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ParetoReport {
    /// Grid name.
    pub grid: String,
    /// Objective minimized on the frontier's second axis.
    pub objective: String,
    /// One frontier per (workload, procs) slice, in deterministic order.
    pub frontiers: Vec<SliceFrontier>,
}

/// One cell of the sweep's `energy_breakdown.json` artifact.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepCellBreakdown {
    /// Cell key.
    pub key: String,
    /// Gating-mode label.
    pub mode: String,
    /// Per-component energies, in ledger component order.
    pub components: Vec<ComponentEnergy>,
    /// Core subset total (the legacy Table I accounting).
    pub core_energy: f64,
    /// Uncore total.
    pub uncore_energy: f64,
    /// Ledger grand total.
    pub total_energy: f64,
    /// Energy-delay product of the ledger total.
    pub edp: f64,
    /// Energy-delay-squared product.
    pub ed2p: f64,
    /// Ledger total per committed transaction.
    pub energy_per_commit: f64,
}

impl SweepCellBreakdown {
    fn from_record(r: &CellRecord) -> Self {
        let energies: Vec<f64> = r
            .core_component_energies()
            .into_iter()
            .chain(r.uncore_component_energies())
            .collect();
        let components = ALL_COMPONENTS
            .iter()
            .zip(&energies)
            .map(|(&c, &energy)| ComponentEnergy {
                component: c.label().to_string(),
                core: c.is_core(),
                energy,
                share_of_total: if r.total_energy_with_uncore > 0.0 {
                    energy / r.total_energy_with_uncore
                } else {
                    0.0
                },
            })
            .collect();
        Self {
            key: r.key.clone(),
            mode: r.mode.clone(),
            components,
            core_energy: r.total_energy,
            uncore_energy: r.uncore_energy,
            total_energy: r.total_energy_with_uncore,
            edp: r.edp,
            ed2p: r.ed2p,
            energy_per_commit: r.energy_per_commit,
        }
    }
}

/// The sweep's `energy_breakdown.json` artifact: per-cell component
/// energies, assembled from the streamed records (and therefore
/// byte-identical across stepping engines).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepBreakdownReport {
    /// Grid name.
    pub grid: String,
    /// One breakdown per cell, in grid order.
    pub cells: Vec<SweepCellBreakdown>,
}

/// The `sweep_summary.json` artifact.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SummaryReport {
    /// Grid name.
    pub grid: String,
    /// Total number of cells in the grid.
    pub cells: usize,
    /// One summary per (workload, procs) slice, in deterministic order.
    pub slices: Vec<SliceSummary>,
}

/// Result of a completed [`run_sweep`] call.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The grid that was run.
    pub grid: SweepGrid,
    /// The objective the frontiers were computed under.
    pub objective: SweepObjective,
    /// All cell records, in deterministic grid order (resumed and newly
    /// executed alike).
    pub records: Vec<CellRecord>,
    /// Cells simulated by this invocation.
    pub executed: usize,
    /// Cells skipped because `sweep.jsonl` already recorded them.
    pub skipped: usize,
    /// Per-slice Pareto frontiers.
    pub frontiers: Vec<SliceFrontier>,
    /// Per-slice summaries.
    pub summaries: Vec<SliceSummary>,
    /// Path of the streamed JSONL artifact.
    pub jsonl_path: PathBuf,
    /// Path of the Pareto artifact.
    pub pareto_path: PathBuf,
    /// Path of the summary artifact.
    pub summary_path: PathBuf,
    /// Path of the per-cell component-energy artifact.
    pub breakdown_path: PathBuf,
}

/// Simulate one cell on the chosen engine and the bus topology.
pub fn run_cell(cell: &SweepCell, engine: impl Into<EngineChoice>) -> Result<CellRecord, SimError> {
    run_cell_on(cell, engine, TopologyConfig::Bus)
}

/// The resume/dedup key of a cell on a given topology: the plain
/// [`SweepCell::key`] on the bus (keeping every pre-topology `sweep.jsonl`
/// resumable), with the topology's key segment appended on a sharded fabric
/// (so bus and sharded record streams can never be mixed up on resume).
#[must_use]
pub fn cell_key_on(cell: &SweepCell, topology: TopologyConfig) -> String {
    match topology.key_segment() {
        None => cell.key(),
        Some(segment) => format!("{}-{segment}", cell.key()),
    }
}

/// A workload loaded from a trace file, made available to the sweep under
/// its fingerprinted axis name: a cell whose `workload` field equals
/// [`Self::axis_name`] is driven by the decoded trace instead of a registry
/// generator. Cells naming anything else still resolve through
/// `workload_by_name`, so a trace grid and a synthetic grid can never
/// silently swap inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceWorkload {
    /// The axis name the trace is registered under
    /// (`htm_workloads::LoadedTrace::axis_name`, `trace-{name}-{fp8}`).
    pub axis_name: String,
    /// The decoded, fingerprint-verified workload.
    pub workload: WorkloadTrace,
}

impl TraceWorkload {
    /// Wrap a verified [`htm_workloads::LoadedTrace`] for sweep use.
    #[must_use]
    pub fn from_loaded(loaded: &htm_workloads::LoadedTrace) -> Self {
        Self {
            axis_name: loaded.axis_name(),
            workload: loaded.workload.clone(),
        }
    }
}

/// Configure a [`SimulationBuilder`] for one cell of the grid (shared by the
/// plain and the checkpointed cell runners, which must build the identical
/// machine). A cell whose workload name matches `trace` uses the decoded
/// trace; everything else resolves through the workload registry.
fn cell_builder(
    cell: &SweepCell,
    engine: impl Into<EngineChoice>,
    topology: TopologyConfig,
    trace: Option<&TraceWorkload>,
) -> Result<SimulationBuilder, SimError> {
    let builder = SimulationBuilder::new()
        .processors(cell.procs)
        .topology(topology)
        // `l1_geometry` already re-derives the power model's TCC d-cache
        // factor for the swept capacity; only the leakage axis is added.
        .l1_geometry(cell.geometry.l1_kb, cell.geometry.l1_assoc)
        .leakage_share(cell.leakage_share());
    let builder = match trace {
        Some(t) if t.axis_name == cell.workload => builder.workload(t.workload.clone()),
        _ => builder
            .workload_by_name(&cell.workload, cell.scale, cell.seed)
            .map_err(SimError::BadWorkload)?,
    };
    Ok(builder
        .gating(cell.mode)
        .cycle_limit(cell.cycle_limit)
        .engine(engine))
}

/// Simulate one cell on the chosen engine and interconnect topology.
pub fn run_cell_on(
    cell: &SweepCell,
    engine: impl Into<EngineChoice>,
    topology: TopologyConfig,
) -> Result<CellRecord, SimError> {
    run_cell_traced_on(cell, engine, topology, None)
}

/// [`run_cell_on`] with an optional trace-file workload override (see
/// [`TraceWorkload`]).
pub fn run_cell_traced_on(
    cell: &SweepCell,
    engine: impl Into<EngineChoice>,
    topology: TopologyConfig,
    trace: Option<&TraceWorkload>,
) -> Result<CellRecord, SimError> {
    let report = cell_builder(cell, engine, topology, trace)?.run()?;
    let mut record = CellRecord::from_report(cell, &report);
    record.key = cell_key_on(cell, topology);
    Ok(record)
}

/// Per-cell durable checkpointing for a sweep run: each cell writes a
/// checkpoint of its simulator state into `dir` every `every` cycles under
/// its [`cell_key_on`] identity, and a resumed sweep picks every in-flight
/// cell up from its newest valid checkpoint instead of restarting it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCheckpoint {
    /// Directory holding the per-cell checkpoint files.
    pub dir: PathBuf,
    /// Checkpoint interval in simulated cycles.
    pub every: Cycle,
}

/// Simulate one cell with durable checkpointing (see [`SweepCheckpoint`]).
/// Corrupt checkpoint files and mid-run resumes are reported loudly on
/// stderr; the checkpoints of a completed cell are deleted — its record is
/// about to be durably appended to `sweep.jsonl`, which supersedes them.
fn run_cell_ckpt_on(
    cell: &SweepCell,
    engine: impl Into<EngineChoice>,
    topology: TopologyConfig,
    spec: &SweepCheckpoint,
    trace: Option<&TraceWorkload>,
) -> Result<CellRecord, SweepError> {
    let key = cell_key_on(cell, topology);
    let builder =
        cell_builder(cell, engine, topology, trace).map_err(|source| SweepError::Cell {
            key: key.clone(),
            source,
        })?;
    let ckpt = CheckpointConfig::new(&spec.dir, spec.every, key.clone());
    let (report, info) =
        builder
            .run_checkpointed(&ckpt)
            .map_err(|source| SweepError::Checkpoint {
                key: Some(key.clone()),
                source,
            })?;
    for (path, why) in &info.skipped {
        eprintln!(
            "sweep cell `{key}`: skipping corrupt checkpoint '{}': {why}",
            path.display()
        );
    }
    if let Some(cycle) = info.resumed_from {
        eprintln!("sweep cell `{key}`: resumed from checkpoint at cycle {cycle}");
    }
    if let Err(e) = remove_checkpoints(&spec.dir, &key) {
        // Leftover checkpoints are dead weight, not a correctness problem —
        // the completed cell's record supersedes them on any future resume.
        eprintln!("sweep cell `{key}`: could not clean up its checkpoints: {e}");
    }
    let mut record = CellRecord::from_report(cell, &report);
    record.key = key;
    Ok(record)
}

/// Time travel into one cell of a grid: restore the nearest checkpoint of
/// the cell's [`cell_key_on`] identity at or before `target` from
/// `ckpt_dir` and fast-forward the machine to exactly that cycle (see
/// [`crate::checkpoint::replay_to`]). Returns the replay report and the
/// corrupt checkpoint files skipped during the scan.
pub fn replay_cell_to(
    cell: &SweepCell,
    engine: impl Into<EngineChoice>,
    topology: TopologyConfig,
    ckpt_dir: &Path,
    target: Cycle,
) -> Result<(crate::checkpoint::ReplayReport, Vec<(PathBuf, String)>), SweepError> {
    replay_cell_traced_to(cell, engine, topology, ckpt_dir, target, None)
}

/// [`replay_cell_to`] with an optional trace-file workload override, so
/// time travel works for trace-driven sweeps too (the restored checkpoint
/// still verifies the workload fingerprint, which the loaded trace
/// carries).
pub fn replay_cell_traced_to(
    cell: &SweepCell,
    engine: impl Into<EngineChoice>,
    topology: TopologyConfig,
    ckpt_dir: &Path,
    target: Cycle,
    trace: Option<&TraceWorkload>,
) -> Result<(crate::checkpoint::ReplayReport, Vec<(PathBuf, String)>), SweepError> {
    let key = cell_key_on(cell, topology);
    let builder =
        cell_builder(cell, engine, topology, trace).map_err(|source| SweepError::Cell {
            key: key.clone(),
            source,
        })?;
    builder
        .replay_to(ckpt_dir, &key, target)
        .map_err(|source| SweepError::Checkpoint {
            key: Some(key),
            source,
        })
}

/// Render a `catch_unwind` payload for an error message: panics carry a
/// `&str` or `String` when raised by `panic!`, but `panic_any` can throw any
/// type — those are reported as non-string payloads instead of crashing the
/// error path itself.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Parse an existing `sweep.jsonl` into records, in file order. Every line
/// must carry the current [`SCHEMA_VERSION`]; files written by older
/// binaries (whose records lack the ledger fields) are rejected with the
/// version story instead of a puzzling missing-field error or, worse, a
/// silently diverging resumed artifact.
///
/// A **torn final line** — the file does not end in `\n` because the writer
/// was killed mid-append — is *not* a corrupt file: it is exactly the state
/// a crash leaves behind, and the record it belonged to was never complete.
/// The torn tail is dropped, the file is truncated back to its last complete
/// line, and the resume proceeds with the (one-shorter) prefix; the resumed
/// run re-executes that cell and appends it again.
fn read_completed(path: &Path) -> Result<Vec<CellRecord>, SweepError> {
    let bytes = fs::read(path)?;
    let complete_len = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
    if complete_len < bytes.len() {
        let file = fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(complete_len as u64)?;
        file.sync_all()?;
        eprintln!(
            "{}: dropped a torn final line ({} bytes) left by an interrupted append",
            path.display(),
            bytes.len() - complete_len
        );
    }
    let text =
        String::from_utf8(bytes[..complete_len].to_vec()).map_err(|e| SweepError::Resume {
            line: 0,
            message: format!("not valid UTF-8: {e}"),
        })?;
    let mut completed = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = serde_json::from_str(line).map_err(|e| SweepError::Resume {
            line: i + 1,
            message: e.to_string(),
        })?;
        let schema = value.get("schema").and_then(serde::Value::as_u64);
        if schema != Some(u64::from(SCHEMA_VERSION)) {
            return Err(SweepError::SchemaMismatch {
                line: i + 1,
                found: schema,
                expected: SCHEMA_VERSION,
            });
        }
        let record = CellRecord::from_value(&value).map_err(|message| SweepError::Resume {
            line: i + 1,
            message,
        })?;
        completed.push(record);
    }
    Ok(completed)
}

/// Validate that the resumed records are exactly the in-order prefix of the
/// grid's key list — the shape every in-order writer run leaves behind.
/// Anything else (foreign keys, gaps, reorderings, duplicates) means the
/// file belongs to a different grid and a resumed run could not converge to
/// the fresh-run artifact.
fn check_resume_prefix(completed: &[CellRecord], keys: &[String]) -> Result<(), SweepError> {
    for (i, record) in completed.iter().enumerate() {
        match keys.get(i) {
            Some(expected) if *expected == record.key => {}
            _ if !keys.contains(&record.key) => {
                return Err(SweepError::ForeignRecord(record.key.clone()));
            }
            Some(expected) => {
                return Err(SweepError::NonPrefixResume {
                    line: i + 1,
                    expected: expected.clone(),
                    found: record.key.clone(),
                });
            }
            // More records than grid cells while every key is in the grid:
            // the file repeats a cell (e.g. a complete run resumed after a
            // duplicate append).
            None => {
                return Err(SweepError::Resume {
                    line: i + 1,
                    message: format!("more records than grid cells (cell `{}`)", record.key),
                });
            }
        }
    }
    Ok(())
}

/// [`run_sweep_with`] under the raw-energy objective (the historical
/// default).
pub fn run_sweep(
    grid: &SweepGrid,
    engine: impl Into<EngineChoice>,
    out_dir: &Path,
    resume: bool,
) -> Result<SweepOutcome, SweepError> {
    run_sweep_with(grid, engine, out_dir, resume, SweepObjective::Energy)
}

/// Run a sweep grid, streaming records to `<out_dir>/sweep.jsonl` and
/// writing the Pareto / summary / grid / energy-breakdown artifacts, with
/// the Pareto frontiers computed under the chosen objective.
///
/// With `resume = true` and an existing `sweep.jsonl`, the recorded records
/// must carry the current schema version and be the in-order prefix of this
/// grid's cell list — exactly the shape any interrupted in-order run leaves
/// behind; they are skipped and the remaining cells appended, converging to
/// the byte-identical artifacts of an uninterrupted run. Resuming with a
/// different (reordered or regrown) grid or an old-schema file is rejected.
/// Without `resume`, the file is rewritten from scratch. On a cell failure,
/// the error names the first failing cell in grid order and the records
/// streamed so far remain on disk, so a subsequent `resume` run picks up
/// where the failure occurred.
///
/// The objective only affects the Pareto post-processing: `sweep.jsonl`,
/// `grid.json` and `energy_breakdown.json` are objective-independent, so an
/// interrupted `--objective edp` sweep can be resumed under any objective.
pub fn run_sweep_with(
    grid: &SweepGrid,
    engine: impl Into<EngineChoice>,
    out_dir: &Path,
    resume: bool,
    objective: SweepObjective,
) -> Result<SweepOutcome, SweepError> {
    run_sweep_on(
        grid,
        engine,
        out_dir,
        resume,
        objective,
        TopologyConfig::Bus,
    )
}

/// [`run_sweep_with`] on an explicit interconnect topology. The topology is
/// a run parameter, not a grid axis: every cell of the sweep runs on it, and
/// on a sharded fabric the cell keys carry the topology segment (see
/// [`cell_key_on`]) so bus and sharded `sweep.jsonl` files reject each
/// other's records on resume.
pub fn run_sweep_on(
    grid: &SweepGrid,
    engine: impl Into<EngineChoice>,
    out_dir: &Path,
    resume: bool,
    objective: SweepObjective,
    topology: TopologyConfig,
) -> Result<SweepOutcome, SweepError> {
    run_sweep_ckpt(grid, engine, out_dir, resume, objective, topology, None)
}

/// [`run_sweep_on`] with optional per-cell durable checkpointing: every cell
/// snapshots its simulator state into `ckpt.dir` at `ckpt.every`-cycle
/// intervals, and a resumed sweep restores each in-flight cell from its
/// newest valid checkpoint instead of restarting it from cycle 0. The
/// checkpoint directory is pre-flight scanned **before any cell runs**:
/// checkpoints of an incompatible format version are a dedicated
/// [`SweepError::Checkpoint`] error up front (mirroring the
/// [`SweepError::SchemaMismatch`] gate on `sweep.jsonl`), while torn or
/// corrupt files are skipped loudly when the affected cell resumes.
/// Checkpointing never changes the artifacts — a checkpointed, killed and
/// resumed sweep converges to the byte-identical files of an uninterrupted
/// run.
pub fn run_sweep_ckpt(
    grid: &SweepGrid,
    engine: impl Into<EngineChoice>,
    out_dir: &Path,
    resume: bool,
    objective: SweepObjective,
    topology: TopologyConfig,
    ckpt: Option<&SweepCheckpoint>,
) -> Result<SweepOutcome, SweepError> {
    run_sweep_ckpt_traced(
        grid, engine, out_dir, resume, objective, topology, ckpt, None,
    )
}

/// [`run_sweep_ckpt`] with an optional trace-file workload (see
/// [`TraceWorkload`]): cells whose workload axis name matches the trace's
/// fingerprinted axis name run the decoded trace. Everything else —
/// record order, resume semantics, checkpointing, artifacts — is
/// unchanged, and because the axis name embeds the trace fingerprint, a
/// `sweep.jsonl` written for one trace file rejects a resume against an
/// edited file (or a synthetic grid) with [`SweepError::ForeignRecord`].
#[allow(clippy::too_many_arguments)]
pub fn run_sweep_ckpt_traced(
    grid: &SweepGrid,
    engine: impl Into<EngineChoice>,
    out_dir: &Path,
    resume: bool,
    objective: SweepObjective,
    topology: TopologyConfig,
    ckpt: Option<&SweepCheckpoint>,
    trace: Option<&TraceWorkload>,
) -> Result<SweepOutcome, SweepError> {
    let engine = engine.into();
    let cells = grid.expand();
    if cells.is_empty() {
        return Err(SweepError::EmptyGrid);
    }
    if let Some(spec) = ckpt {
        validate_checkpoint_dir(&spec.dir)
            .map_err(|source| SweepError::Checkpoint { key: None, source })?;
    }
    let keys: Vec<String> = cells.iter().map(|c| cell_key_on(c, topology)).collect();
    {
        let mut seen = std::collections::BTreeSet::new();
        for key in &keys {
            if !seen.insert(key) {
                return Err(SweepError::DuplicateKey(key.clone()));
            }
        }
    }

    fs::create_dir_all(out_dir)?;
    let jsonl_path = out_dir.join(JSONL_NAME);
    let completed = if resume && jsonl_path.exists() {
        let completed = read_completed(&jsonl_path)?;
        check_resume_prefix(&completed, &keys)?;
        completed
    } else {
        Vec::new()
    };

    atomic_write_bytes(&out_dir.join(GRID_NAME), to_json(grid).as_bytes())?;

    // The recorded records are the first `skipped` cells of the grid; the
    // rest still need simulating, in grid order.
    let skipped = completed.len();
    let pending: Vec<&SweepCell> = cells.iter().skip(skipped).collect();

    let file = fs::OpenOptions::new()
        .create(true)
        .append(resume)
        .truncate(!resume)
        .write(true)
        .open(&jsonl_path)?;
    let mut writer = BufWriter::new(file);

    let mut new_records: Vec<CellRecord> = Vec::with_capacity(pending.len());
    let mut failure: Option<SweepError> = None;

    if !pending.is_empty() {
        // Sized from the process-wide pool budget (the binaries' `--threads`
        // cap), so cell-level and window-level parallelism share one budget:
        // windowed lanes spawned by a cell run on the global pool itself,
        // whose helping wait() keeps these scoped threads working instead of
        // oversubscribing the host.
        let threads = crate::pool::WorkerPool::global()
            .workers()
            .min(pending.len());
        type Slot = Option<Result<CellRecord, SweepError>>;
        let slots: Mutex<Vec<Slot>> = Mutex::new((0..pending.len()).map(|_| None).collect());
        let ready = Condvar::new();
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = pending.get(idx) else {
                        break;
                    };
                    // A panicking cell must still fill its slot — otherwise
                    // the in-order writer would wait on it forever and the
                    // sweep would deadlock instead of failing.
                    let caught =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match ckpt {
                            None => run_cell_traced_on(cell, engine, topology, trace).map_err(
                                |source| SweepError::Cell {
                                    key: cell_key_on(cell, topology),
                                    source,
                                },
                            ),
                            Some(spec) => run_cell_ckpt_on(cell, engine, topology, spec, trace),
                        }));
                    let result = match caught {
                        Ok(result) => result,
                        Err(payload) => Err(SweepError::CellPanic {
                            key: cell_key_on(cell, topology),
                            message: panic_message(payload.as_ref()),
                        }),
                    };
                    slots.lock().expect("sweep worker poisoned the slots")[idx] = Some(result);
                    ready.notify_all();
                });
            }

            // The scope's owning thread is the writer: it appends records
            // strictly in grid order, waiting for the next-in-order cell
            // even while later cells are already done.
            for written in 0..pending.len() {
                let result = {
                    let mut guard = slots.lock().expect("sweep worker poisoned the slots");
                    loop {
                        if let Some(result) = guard[written].take() {
                            break result;
                        }
                        guard = ready.wait(guard).expect("sweep worker poisoned the slots");
                    }
                };
                match result {
                    Ok(record) => {
                        let line = to_json_compact(&record);
                        // Flush + fsync per record: a cell is simulated work
                        // worth keeping, and a crash immediately after the
                        // append must not lose it. A kill *during* the append
                        // leaves a torn final line, which `read_completed`
                        // drops on resume.
                        if let Err(e) = writeln!(writer, "{line}")
                            .and_then(|()| writer.flush())
                            .and_then(|()| writer.get_ref().sync_data())
                        {
                            abort.store(true, Ordering::Relaxed);
                            failure = Some(SweepError::Io(e));
                            break;
                        }
                        new_records.push(record);
                    }
                    Err(error) => {
                        abort.store(true, Ordering::Relaxed);
                        failure = Some(error);
                        break;
                    }
                }
            }
        });
    }
    if let Some(error) = failure {
        return Err(error);
    }

    // Assemble the full record list in grid order: the resumed prefix
    // followed by the writer's newly-streamed records.
    let executed = new_records.len();
    let mut records = completed;
    records.append(&mut new_records);
    debug_assert!(records
        .iter()
        .zip(&keys)
        .all(|(record, key)| record.key == *key));

    let frontiers = pareto_frontiers_with(&records, objective);
    let summaries = summarize_slices(&records);
    let pareto_path = out_dir.join(PARETO_NAME);
    let summary_path = out_dir.join(SUMMARY_NAME);
    let breakdown_path = out_dir.join(BREAKDOWN_NAME);
    // The post-processed artifacts are written via temp file + fsync +
    // atomic rename: a crash mid-write leaves either the previous complete
    // artifact or the new one, never a truncated JSON file.
    atomic_write_bytes(
        &pareto_path,
        to_json(&ParetoReport {
            grid: grid.name.clone(),
            objective: objective.label().to_string(),
            frontiers: frontiers.clone(),
        })
        .as_bytes(),
    )?;
    atomic_write_bytes(
        &summary_path,
        to_json(&SummaryReport {
            grid: grid.name.clone(),
            cells: cells.len(),
            slices: summaries.clone(),
        })
        .as_bytes(),
    )?;
    atomic_write_bytes(
        &breakdown_path,
        to_json(&SweepBreakdownReport {
            grid: grid.name.clone(),
            cells: records
                .iter()
                .map(SweepCellBreakdown::from_record)
                .collect(),
        })
        .as_bytes(),
    )?;

    Ok(SweepOutcome {
        grid: grid.clone(),
        objective,
        records,
        executed,
        skipped,
        frontiers,
        summaries,
        jsonl_path,
        pareto_path,
        summary_path,
        breakdown_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::GatingMode;
    use htm_workloads::WorkloadScale;

    fn test_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("clockgate-sweep-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_grid() -> SweepGrid {
        SweepGrid {
            workloads: vec!["intruder".into()],
            processor_counts: vec![4],
            ..SweepGrid::smoke()
        }
    }

    #[test]
    fn run_cell_produces_a_record_for_every_smoke_cell() {
        for cell in SweepGrid::smoke().expand() {
            let record = run_cell(&cell, EngineKind::FastForward).unwrap();
            assert_eq!(record.key, cell.key());
            assert!(record.commits > 0, "{} must commit", record.key);
            assert!(record.total_energy > 0.0);
        }
    }

    #[test]
    fn sweep_writes_all_artifacts_and_is_deterministic() {
        let grid = tiny_grid();
        let dir_a = test_dir("det-a");
        let dir_b = test_dir("det-b");
        let a = run_sweep(&grid, EngineKind::FastForward, &dir_a, false).unwrap();
        let _b = run_sweep(&grid, EngineKind::FastForward, &dir_b, false).unwrap();
        assert_eq!(a.executed, grid.expand().len());
        assert_eq!(a.skipped, 0);
        for name in [
            JSONL_NAME,
            PARETO_NAME,
            SUMMARY_NAME,
            GRID_NAME,
            BREAKDOWN_NAME,
        ] {
            let bytes_a = fs::read(dir_a.join(name)).unwrap();
            let bytes_b = fs::read(dir_b.join(name)).unwrap();
            assert!(!bytes_a.is_empty());
            assert_eq!(bytes_a, bytes_b, "{name} must be byte-identical");
        }
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn resume_skips_completed_cells_and_leaves_artifacts_identical() {
        let grid = tiny_grid();
        let dir = test_dir("resume");
        let fresh = run_sweep(&grid, EngineKind::FastForward, &dir, false).unwrap();
        let jsonl = fs::read(&fresh.jsonl_path).unwrap();
        let pareto = fs::read(&fresh.pareto_path).unwrap();

        // Truncate the JSONL to a prefix, as an interrupted run would.
        let text = String::from_utf8(jsonl.clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2);
        let prefix: String = lines[..1].iter().map(|l| format!("{l}\n")).collect();
        fs::write(&fresh.jsonl_path, prefix).unwrap();

        let resumed = run_sweep(&grid, EngineKind::FastForward, &dir, true).unwrap();
        assert_eq!(resumed.skipped, 1);
        assert_eq!(resumed.executed, lines.len() - 1);
        assert_eq!(fs::read(&resumed.jsonl_path).unwrap(), jsonl);
        assert_eq!(fs::read(&resumed.pareto_path).unwrap(), pareto);

        // Resuming a complete sweep runs nothing and changes nothing.
        let noop = run_sweep(&grid, EngineKind::FastForward, &dir, true).unwrap();
        assert_eq!(noop.executed, 0);
        assert_eq!(noop.skipped, lines.len());
        assert_eq!(fs::read(&noop.jsonl_path).unwrap(), jsonl);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_records_from_a_different_grid() {
        let dir = test_dir("foreign");
        run_sweep(&tiny_grid(), EngineKind::FastForward, &dir, false).unwrap();
        let other = SweepGrid {
            workloads: vec!["genome".into()],
            ..tiny_grid()
        };
        let err = run_sweep(&other, EngineKind::FastForward, &dir, true).unwrap_err();
        assert!(matches!(err, SweepError::ForeignRecord(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_non_prefix_records() {
        let grid = tiny_grid();
        let dir = test_dir("nonprefix");
        let fresh = run_sweep(&grid, EngineKind::FastForward, &dir, false).unwrap();
        // Drop the FIRST line: the remaining records are in the grid but no
        // longer the in-order prefix, so a resumed run could not converge
        // to the fresh-run byte stream.
        let text = fs::read_to_string(&fresh.jsonl_path).unwrap();
        let tail: String = text.lines().skip(1).map(|l| format!("{l}\n")).collect();
        fs::write(&fresh.jsonl_path, tail).unwrap();
        let err = run_sweep(&grid, EngineKind::FastForward, &dir, true).unwrap_err();
        assert!(
            matches!(err, SweepError::NonPrefixResume { line: 1, .. }),
            "{err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_a_grown_grid() {
        // A superset grid passes a contains()-style check but breaks the
        // prefix invariant; the runner must refuse rather than produce a
        // JSONL whose order differs from a fresh run.
        let small = SweepGrid {
            workloads: vec!["intruder".into()],
            ..SweepGrid::smoke()
        };
        let grown = SweepGrid {
            workloads: vec!["genome".into(), "intruder".into()],
            ..SweepGrid::smoke()
        };
        let dir = test_dir("grown");
        run_sweep(&small, EngineKind::FastForward, &dir, false).unwrap();
        let err = run_sweep(&grown, EngineKind::FastForward, &dir, true).unwrap_err();
        assert!(
            matches!(err, SweepError::NonPrefixResume { line: 1, .. }),
            "{err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_duplicate_records() {
        let grid = tiny_grid();
        let dir = test_dir("dup");
        let fresh = run_sweep(&grid, EngineKind::FastForward, &dir, false).unwrap();
        // Re-append the last line of a complete run: every key is in the
        // grid, but the file now has more records than cells.
        let text = fs::read_to_string(&fresh.jsonl_path).unwrap();
        let last = text.lines().last().unwrap().to_string();
        fs::write(&fresh.jsonl_path, format!("{text}{last}\n")).unwrap();
        let err = run_sweep(&grid, EngineKind::FastForward, &dir, true).unwrap_err();
        assert!(matches!(err, SweepError::Resume { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_corrupt_jsonl() {
        let dir = test_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(JSONL_NAME), "not json\n").unwrap();
        let err = run_sweep(&tiny_grid(), EngineKind::FastForward, &dir, true).unwrap_err();
        assert!(matches!(err, SweepError::Resume { line: 1, .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_failures_name_the_first_failing_cell_in_grid_order() {
        let grid = SweepGrid {
            cycle_limit: 10, // guaranteed CycleLimitExceeded for every cell
            ..tiny_grid()
        };
        let dir = test_dir("fail");
        let err = run_sweep(&grid, EngineKind::FastForward, &dir, false).unwrap_err();
        match err {
            SweepError::Cell { key, source } => {
                assert_eq!(key, grid.expand()[0].key(), "first cell in grid order");
                assert!(matches!(source, SimError::CycleLimitExceeded { .. }));
            }
            other => panic!("expected a cell failure, got {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_grid_is_rejected() {
        let grid = SweepGrid {
            workloads: vec![],
            ..tiny_grid()
        };
        let dir = test_dir("empty");
        assert!(matches!(
            run_sweep(&grid, EngineKind::FastForward, &dir, false),
            Err(SweepError::EmptyGrid)
        ));
    }

    #[test]
    fn both_engines_agree_byte_for_byte_on_a_tiny_sweep() {
        let grid = SweepGrid {
            scales: vec![WorkloadScale::Test],
            gating: super::super::GatingAxis {
                kinds: vec![
                    super::super::ModeKind::Ungated,
                    super::super::ModeKind::ClockGate,
                ],
                ..Default::default()
            },
            ..tiny_grid()
        };
        let dir_fast = test_dir("eng-fast");
        let dir_naive = test_dir("eng-naive");
        run_sweep(&grid, EngineKind::FastForward, &dir_fast, false).unwrap();
        run_sweep(&grid, EngineKind::Naive, &dir_naive, false).unwrap();
        for name in [JSONL_NAME, PARETO_NAME, SUMMARY_NAME, BREAKDOWN_NAME] {
            assert_eq!(
                fs::read(dir_fast.join(name)).unwrap(),
                fs::read(dir_naive.join(name)).unwrap(),
                "{name} must not depend on the stepping engine"
            );
        }
        let _ = fs::remove_dir_all(&dir_fast);
        let _ = fs::remove_dir_all(&dir_naive);
    }

    #[test]
    fn sharded_topology_suffixes_keys_and_rejects_bus_resume() {
        use htm_sim::topology::LatencyModel;
        let grid = SweepGrid {
            scales: vec![WorkloadScale::Test],
            ..tiny_grid()
        };
        let sharded = TopologyConfig::Sharded {
            banks: 0,
            model: LatencyModel::Crossbar {
                hop_cycles: LatencyModel::DEFAULT_CROSSBAR_HOP,
            },
        };
        let dir = test_dir("topo");
        let outcome = run_sweep_on(
            &grid,
            EngineKind::FastForward,
            &dir,
            false,
            SweepObjective::Energy,
            sharded,
        )
        .unwrap();
        let segment = sharded.key_segment().unwrap();
        for record in &outcome.records {
            assert!(
                record.key.ends_with(&segment),
                "{} must carry the topology segment",
                record.key
            );
        }
        // A bus run must refuse to resume from the sharded record stream.
        let err = run_sweep(&grid, EngineKind::FastForward, &dir, true).unwrap_err();
        assert!(matches!(err, SweepError::ForeignRecord(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_include_gating_activity_for_gated_modes() {
        let cell = SweepCell {
            workload: "intruder".into(),
            procs: 4,
            geometry: Default::default(),
            leakage_percent: 20,
            scale: WorkloadScale::Test,
            seed: 42,
            mode: GatingMode::ClockGate { w0: 8 },
            cycle_limit: 20_000_000,
        };
        let record = run_cell(&cell, EngineKind::FastForward).unwrap();
        assert!(record.gatings > 0);
        assert!(record.gated_cycles > 0);
        assert!(record.energy_gating_control > 0.0);
        assert!(record.uncore_energy > 0.0);
    }

    #[test]
    fn swept_leakage_share_flows_into_the_record() {
        let base = SweepCell {
            workload: "intruder".into(),
            procs: 4,
            geometry: Default::default(),
            leakage_percent: 20,
            scale: WorkloadScale::Test,
            seed: 42,
            mode: GatingMode::ClockGate { w0: 8 },
            cycle_limit: 20_000_000,
        };
        let leaky = SweepCell {
            leakage_percent: 40,
            ..base.clone()
        };
        let a = run_cell(&base, EngineKind::FastForward).unwrap();
        let b = run_cell(&leaky, EngineKind::FastForward).unwrap();
        assert_eq!(a.total_cycles, b.total_cycles, "power model is passive");
        assert_eq!(b.leakage_percent, 40);
        assert!(
            b.total_energy > a.total_energy,
            "a leakier node burns more during the gated/miss states"
        );
    }

    #[test]
    fn resume_rejects_old_schema_records_with_the_version_story() {
        let grid = tiny_grid();
        let dir = test_dir("schema");
        let fresh = run_sweep(&grid, EngineKind::FastForward, &dir, false).unwrap();
        // Forge a pre-ledger file: strip the schema field from every line
        // (the v1 layout had no such field at all).
        let text = fs::read_to_string(&fresh.jsonl_path).unwrap();
        let stripped: String = text
            .lines()
            .map(|l| format!("{}\n", l.replacen("\"schema\":2,", "", 1)))
            .collect();
        assert_ne!(stripped, text, "the schema field must have been present");
        fs::write(&fresh.jsonl_path, stripped).unwrap();
        let err = run_sweep(&grid, EngineKind::FastForward, &dir, true).unwrap_err();
        assert!(
            matches!(
                err,
                SweepError::SchemaMismatch {
                    line: 1,
                    found: None,
                    expected: super::super::SCHEMA_VERSION,
                }
            ),
            "{err}"
        );
        let rendered = err.to_string();
        assert!(rendered.contains("pre-ledger"), "{rendered}");
        assert!(rendered.contains("--resume"), "{rendered}");

        // A wrong (future/old numbered) version is told apart from a
        // missing field.
        let renumbered: String = text
            .lines()
            .map(|l| format!("{}\n", l.replacen("\"schema\":2,", "\"schema\":1,", 1)))
            .collect();
        fs::write(&fresh.jsonl_path, renumbered).unwrap();
        let err = run_sweep(&grid, EngineKind::FastForward, &dir, true).unwrap_err();
        assert!(
            matches!(err, SweepError::SchemaMismatch { found: Some(1), .. }),
            "{err}"
        );
    }

    #[test]
    fn objective_changes_the_pareto_artifact_but_not_the_records() {
        let grid = tiny_grid();
        let dir_energy = test_dir("obj-energy");
        let dir_edp = test_dir("obj-edp");
        let energy = run_sweep_with(
            &grid,
            EngineKind::FastForward,
            &dir_energy,
            false,
            SweepObjective::Energy,
        )
        .unwrap();
        let edp = run_sweep_with(
            &grid,
            EngineKind::FastForward,
            &dir_edp,
            false,
            SweepObjective::Edp,
        )
        .unwrap();
        // The measurement artifacts are objective-independent...
        for name in [JSONL_NAME, GRID_NAME, BREAKDOWN_NAME] {
            assert_eq!(
                fs::read(dir_energy.join(name)).unwrap(),
                fs::read(dir_edp.join(name)).unwrap(),
                "{name} must not depend on the objective"
            );
        }
        // ...while the frontier artifact records which objective it used.
        let pareto_energy = fs::read_to_string(&energy.pareto_path).unwrap();
        let pareto_edp = fs::read_to_string(&edp.pareto_path).unwrap();
        assert!(pareto_energy.contains("\"objective\": \"energy\""));
        assert!(pareto_edp.contains("\"objective\": \"edp\""));
        // An interrupted EDP sweep resumes cleanly (the records carry no
        // objective).
        let resumed = run_sweep_with(
            &grid,
            EngineKind::FastForward,
            &dir_edp,
            true,
            SweepObjective::Edp,
        )
        .unwrap();
        assert_eq!(resumed.executed, 0);
        let _ = fs::remove_dir_all(&dir_energy);
        let _ = fs::remove_dir_all(&dir_edp);
    }

    #[test]
    fn torn_final_jsonl_line_is_dropped_and_resume_converges() {
        let grid = tiny_grid();
        let dir = test_dir("torn");
        let fresh = run_sweep(&grid, EngineKind::FastForward, &dir, false).unwrap();
        let jsonl = fs::read(&fresh.jsonl_path).unwrap();
        let pareto = fs::read(&fresh.pareto_path).unwrap();

        // Kill-mid-write: the file ends with the first complete line plus
        // half of the second, with no trailing newline — exactly what a
        // SIGKILL during the append leaves behind.
        let text = String::from_utf8(jsonl.clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2);
        let torn = format!("{}\n{}", lines[0], &lines[1][..lines[1].len() / 2]);
        fs::write(&fresh.jsonl_path, &torn).unwrap();

        let resumed = run_sweep(&grid, EngineKind::FastForward, &dir, true).unwrap();
        assert_eq!(resumed.skipped, 1, "only the complete line is a record");
        assert_eq!(resumed.executed, lines.len() - 1);
        assert_eq!(
            fs::read(&resumed.jsonl_path).unwrap(),
            jsonl,
            "the resumed stream converges to the uninterrupted bytes"
        );
        assert_eq!(fs::read(&resumed.pareto_path).unwrap(), pareto);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_single_line_without_newline_resumes_from_scratch() {
        let grid = tiny_grid();
        let dir = test_dir("torn-first");
        let fresh = run_sweep(&grid, EngineKind::FastForward, &dir, false).unwrap();
        let jsonl = fs::read(&fresh.jsonl_path).unwrap();
        // The very first append was interrupted: no newline anywhere.
        let text = String::from_utf8(jsonl.clone()).unwrap();
        let first = text.lines().next().unwrap();
        fs::write(&fresh.jsonl_path, &first[..first.len() / 2]).unwrap();
        let resumed = run_sweep(&grid, EngineKind::FastForward, &dir, true).unwrap();
        assert_eq!(resumed.skipped, 0);
        assert_eq!(fs::read(&resumed.jsonl_path).unwrap(), jsonl);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn panic_messages_cover_str_string_and_non_string_payloads() {
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(42_u32)).unwrap_err();
        let err = SweepError::CellPanic {
            key: "cell".into(),
            message: panic_message(caught.as_ref()),
        };
        assert_eq!(
            err.to_string(),
            "sweep cell `cell` panicked: non-string panic payload"
        );

        let caught = std::panic::catch_unwind(|| panic!("plain str")).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "plain str");

        let caught = std::panic::catch_unwind(|| panic!("formatted {}", "string")).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "formatted string");
    }

    #[test]
    fn checkpointed_sweep_matches_plain_artifacts_and_cleans_up() {
        let grid = tiny_grid();
        let dir_plain = test_dir("ckpt-plain");
        let dir_ckpt = test_dir("ckpt-on");
        let ckpt_dir = test_dir("ckpt-files");
        run_sweep(&grid, EngineKind::FastForward, &dir_plain, false).unwrap();
        run_sweep_ckpt(
            &grid,
            EngineKind::FastForward,
            &dir_ckpt,
            false,
            SweepObjective::Energy,
            TopologyConfig::Bus,
            Some(&SweepCheckpoint {
                dir: ckpt_dir.clone(),
                every: 500,
            }),
        )
        .unwrap();
        for name in [JSONL_NAME, PARETO_NAME, SUMMARY_NAME, BREAKDOWN_NAME] {
            assert_eq!(
                fs::read(dir_plain.join(name)).unwrap(),
                fs::read(dir_ckpt.join(name)).unwrap(),
                "{name} must not depend on checkpointing"
            );
        }
        // Completed cells delete their checkpoints: the records supersede
        // them.
        let leftovers: Vec<_> = fs::read_dir(&ckpt_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert!(leftovers.is_empty(), "stale checkpoints: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir_plain);
        let _ = fs::remove_dir_all(&dir_ckpt);
        let _ = fs::remove_dir_all(&ckpt_dir);
    }

    #[test]
    fn old_version_checkpoint_fails_before_any_cell_runs() {
        let grid = tiny_grid();
        let dir = test_dir("ckpt-version");
        let ckpt_dir = test_dir("ckpt-version-files");
        fs::create_dir_all(&ckpt_dir).unwrap();
        // A checkpoint written by a future (or past) format version.
        let stale = htm_sim::checkpoint::seal_with_version(
            htm_sim::checkpoint::CHECKPOINT_VERSION + 1,
            b"whatever",
        );
        fs::write(
            crate::checkpoint::checkpoint_path(&ckpt_dir, "some-cell", 100),
            stale,
        )
        .unwrap();
        let err = run_sweep_ckpt(
            &grid,
            EngineKind::FastForward,
            &dir,
            false,
            SweepObjective::Energy,
            TopologyConfig::Bus,
            Some(&SweepCheckpoint {
                dir: ckpt_dir.clone(),
                every: 500,
            }),
        )
        .unwrap_err();
        assert!(
            matches!(
                &err,
                SweepError::Checkpoint {
                    key: None,
                    source: CheckpointError::UnsupportedVersion { .. },
                }
            ),
            "{err}"
        );
        // The pre-flight gate fired before any cell ran — mirroring the
        // SchemaMismatch gate, no sweep.jsonl was started.
        assert!(!dir.join(JSONL_NAME).exists(), "no cell may have run");
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&ckpt_dir);
    }

    fn loaded_intruder_trace() -> htm_workloads::LoadedTrace {
        let w =
            htm_workloads::by_name("intruder", 4, htm_workloads::WorkloadScale::Test, 42).unwrap();
        htm_workloads::trace::read_from(htm_workloads::trace::render(&w).as_bytes()).unwrap()
    }

    #[test]
    fn traced_cells_match_their_generator_driven_twins_field_for_field() {
        let loaded = loaded_intruder_trace();
        let trace = TraceWorkload::from_loaded(&loaded);
        let trace_grid = SweepGrid::for_trace(&trace.axis_name, 4);
        let synth_grid = tiny_grid();
        for (traced, synth) in trace_grid.expand().iter().zip(synth_grid.expand().iter()) {
            let a = run_cell_traced_on(
                traced,
                EngineKind::FastForward,
                TopologyConfig::Bus,
                Some(&trace),
            )
            .unwrap();
            let b = run_cell(synth, EngineKind::FastForward).unwrap();
            // Same machine, same access stream: every physical field agrees;
            // only the identity fields (key/workload/scale/seed) differ.
            assert_eq!(a.total_cycles, b.total_cycles, "{}", a.key);
            assert_eq!(a.commits, b.commits);
            assert_eq!(a.aborts, b.aborts);
            assert_eq!(a.total_energy.to_bits(), b.total_energy.to_bits());
            assert_eq!(a.edp.to_bits(), b.edp.to_bits());
            assert!(a.key.starts_with("trace-intruder-"));
        }
    }

    #[test]
    fn trace_sweep_runs_resume_and_reject_foreign_records() {
        let loaded = loaded_intruder_trace();
        let trace = TraceWorkload::from_loaded(&loaded);
        let grid = SweepGrid::for_trace(&trace.axis_name, 4);
        let dir = test_dir("trace-sweep");
        let fresh = run_sweep_ckpt_traced(
            &grid,
            EngineKind::FastForward,
            &dir,
            false,
            SweepObjective::Energy,
            TopologyConfig::Bus,
            None,
            Some(&trace),
        )
        .unwrap();
        assert_eq!(fresh.executed, 3);
        // Resuming the same trace file skips everything.
        let noop = run_sweep_ckpt_traced(
            &grid,
            EngineKind::FastForward,
            &dir,
            true,
            SweepObjective::Energy,
            TopologyConfig::Bus,
            None,
            Some(&trace),
        )
        .unwrap();
        assert_eq!(noop.executed, 0);
        assert_eq!(noop.skipped, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_a_trace_grid_rejects_synthetic_records_as_foreign() {
        // Satellite: `sweep --resume` against a grid whose workload axis
        // names a trace file must reject the existing synthetic-sweep
        // records with ForeignRecord — never silently re-key them.
        let dir = test_dir("trace-foreign-synth");
        run_sweep(&tiny_grid(), EngineKind::FastForward, &dir, false).unwrap();
        let loaded = loaded_intruder_trace();
        let trace = TraceWorkload::from_loaded(&loaded);
        let grid = SweepGrid::for_trace(&trace.axis_name, 4);
        let err = run_sweep_ckpt_traced(
            &grid,
            EngineKind::FastForward,
            &dir,
            true,
            SweepObjective::Energy,
            TopologyConfig::Bus,
            None,
            Some(&trace),
        )
        .unwrap_err();
        assert!(matches!(err, SweepError::ForeignRecord(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_an_edited_trace_rejects_the_old_records_as_foreign() {
        let loaded = loaded_intruder_trace();
        let trace = TraceWorkload::from_loaded(&loaded);
        let dir = test_dir("trace-foreign-edit");
        run_sweep_ckpt_traced(
            &SweepGrid::for_trace(&trace.axis_name, 4),
            EngineKind::FastForward,
            &dir,
            false,
            SweepObjective::Energy,
            TopologyConfig::Bus,
            None,
            Some(&trace),
        )
        .unwrap();
        // "Edit" the trace: one extra compute op changes the fingerprint,
        // hence the axis name, hence every cell key.
        let mut edited = loaded.clone();
        edited.workload.threads[0].transactions[0]
            .ops
            .push(htm_tcc::txn::Op::Compute(1));
        edited.fingerprint = edited.workload.fingerprint();
        let edited_trace = TraceWorkload::from_loaded(&edited);
        assert_ne!(edited_trace.axis_name, trace.axis_name);
        let err = run_sweep_ckpt_traced(
            &SweepGrid::for_trace(&edited_trace.axis_name, 4),
            EngineKind::FastForward,
            &dir,
            true,
            SweepObjective::Energy,
            TopologyConfig::Bus,
            None,
            Some(&edited_trace),
        )
        .unwrap_err();
        assert!(matches!(err, SweepError::ForeignRecord(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
