//! On-disk checkpointing: durable snapshots, auto-resume and time travel.
//!
//! [`htm_tcc::TccSystem`] knows how to serialize its complete machine state
//! into a raw payload ([`TccSystem::save_checkpoint`]) and to rebuild itself
//! from one — and the tcc test suite proves the round trip is *bit-exact*:
//! a checkpointed-and-resumed run produces the same [`RunOutcome`] as an
//! uninterrupted one, on every engine. This module owns everything **around**
//! that payload:
//!
//! * the durable file format — the payload framed by
//!   [`htm_sim::checkpoint::seal`] (magic, version, length, FNV-1a-64
//!   checksum) and written with [`atomic_write_bytes`] (temp file + `fsync` +
//!   atomic rename), so a crash at any instant leaves either the previous
//!   checkpoint or the new one, never a half-written file that parses;
//! * the naming scheme — `{key}.{cycle:020}.ckpt`, zero-padded so the
//!   lexicographic order of file names equals the numeric order of cycles;
//! * auto-resume — [`run_checkpointed`] restores the **newest valid**
//!   checkpoint for its key and continues; torn or corrupt files (detected by
//!   the frame's length and checksum) are skipped *loudly*, never silently
//!   trusted, and a checkpoint written by a different format version is a
//!   dedicated [`CheckpointError::UnsupportedVersion`] error rather than a
//!   skip — mixing formats is a user-visible condition, not noise;
//! * time travel — [`replay_to`] restores the nearest checkpoint at or
//!   before a target cycle and fast-forwards the machine to it, the
//!   debugging workflow for "what did the machine look like at the cycle of
//!   the anomaly?".
//!
//! The cross-process exactness contract is documented in `docs/DESIGN.md`
//! ("Checkpoint format & the cross-process exactness contract").

use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use htm_sim::checkpoint::{self as frame, fnv1a64, CkptError, CHECKPOINT_VERSION};
use htm_sim::config::SimConfig;
use htm_sim::Cycle;
use htm_tcc::hooks::GatingHook;
use htm_tcc::stats::RunOutcome;
use htm_tcc::system::{EngineKind, SimError, TccSystem};
use htm_tcc::txn::WorkloadTrace;

/// File extension of every checkpoint file.
pub const CHECKPOINT_EXT: &str = "ckpt";

/// Where, how often, and under which name a run writes checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory holding the checkpoint files (created if missing).
    pub dir: PathBuf,
    /// Checkpoint interval in simulated cycles (must be at least 1).
    pub every: Cycle,
    /// Run identity: checkpoint files are named `{key}.{cycle:020}.ckpt`,
    /// so several runs (e.g. the cells of a sweep) can share one directory.
    pub key: String,
    /// Whether to auto-resume from the newest valid checkpoint for `key`
    /// (the default). When `false` the run starts from cycle 0 regardless of
    /// what is on disk — existing files are left alone and overwritten as
    /// the run passes their cycles again.
    pub resume: bool,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` every `every` cycles under run identity `key`,
    /// with auto-resume enabled.
    pub fn new(dir: impl Into<PathBuf>, every: Cycle, key: impl Into<String>) -> Self {
        Self {
            dir: dir.into(),
            every,
            key: key.into(),
            resume: true,
        }
    }
}

/// Errors of the on-disk checkpoint layer.
#[derive(Debug)]
pub enum CheckpointError {
    /// A filesystem operation failed (the path tells which file or
    /// directory; typical causes are a bad `--checkpoint-dir` or a full
    /// disk).
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A checkpoint file on disk was written by a different format version.
    /// This is a dedicated, pre-flight error — never a silent skip: resuming
    /// past an incompatible checkpoint would quietly redo work the user
    /// believes is saved.
    UnsupportedVersion {
        /// The offending file.
        path: PathBuf,
        /// Version found in the file header.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// A structurally valid checkpoint could not be applied to this run —
    /// it was taken on a different machine configuration or workload trace.
    Restore {
        /// The checkpoint file that failed to restore.
        path: PathBuf,
        /// What the restore validation rejected.
        detail: String,
    },
    /// `every` was zero: a checkpoint interval must be at least one cycle.
    ZeroInterval,
    /// The simulation itself failed (bad configuration, cycle-limit
    /// exceeded, …).
    Sim(SimError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "checkpoint I/O error at '{}': {source}", path.display())
            }
            CheckpointError::UnsupportedVersion {
                path,
                found,
                expected,
            } => write!(
                f,
                "checkpoint '{}' uses format version {found}, but this build reads version \
                 {expected}; delete the stale checkpoint files (or point --checkpoint-dir at a \
                 fresh directory) and re-run",
                path.display()
            ),
            CheckpointError::Restore { path, detail } => write!(
                f,
                "checkpoint '{}' cannot be restored into this run: {detail}",
                path.display()
            ),
            CheckpointError::ZeroInterval => {
                write!(f, "the checkpoint interval must be at least 1 cycle")
            }
            CheckpointError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            CheckpointError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CheckpointError {
    fn from(e: SimError) -> Self {
        CheckpointError::Sim(e)
    }
}

/// What the checkpointed runner did besides simulating: where it resumed
/// from, how many checkpoints it wrote, and which on-disk files it had to
/// skip as corrupt. Callers (the binaries) surface `skipped` to the user —
/// that is the "skipped loudly" half of the durability contract.
#[derive(Debug, Clone, Default)]
pub struct CheckpointRunInfo {
    /// Cycle of the checkpoint the run resumed from (`None` = fresh start).
    pub resumed_from: Option<Cycle>,
    /// Checkpoints written during this run.
    pub checkpoints_written: u64,
    /// Files that matched this run's key but failed the frame validation
    /// (torn write, checksum mismatch, unreadable), with the reason each was
    /// skipped.
    pub skipped: Vec<(PathBuf, String)>,
    /// The stepping engine the run executed under (the resolved kind when
    /// the caller selected `auto`).
    pub engine: EngineKind,
    /// Windowed-engine counters of the run (all zero under every other
    /// engine). Monitoring only: a resumed run counts only its own
    /// remainder, because these counters are deliberately not checkpointed
    /// (checkpoint bytes stay engine-independent).
    pub windowed: htm_tcc::system::WindowedStats,
}

/// The full file name of the checkpoint of run `key` at cycle `cycle`.
///
/// The cycle is zero-padded to 20 digits (the width of `u64::MAX`) so plain
/// lexicographic file-name order equals numeric cycle order.
#[must_use]
pub fn checkpoint_file_name(key: &str, cycle: Cycle) -> String {
    format!("{key}.{cycle:020}.{CHECKPOINT_EXT}")
}

/// The path of the checkpoint of run `key` at cycle `cycle` inside `dir`.
#[must_use]
pub fn checkpoint_path(dir: &Path, key: &str, cycle: Cycle) -> PathBuf {
    dir.join(checkpoint_file_name(key, cycle))
}

/// Parse a file name produced by [`checkpoint_file_name`] for `key` back
/// into its cycle. Returns `None` for files of other keys or other shapes.
#[must_use]
pub fn parse_checkpoint_cycle(file_name: &str, key: &str) -> Option<Cycle> {
    let rest = file_name.strip_prefix(key)?.strip_prefix('.')?;
    let digits = rest.strip_suffix(CHECKPOINT_EXT)?.strip_suffix('.')?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Write `bytes` to `path` durably and atomically: the bytes go to a
/// temporary file in the same directory, are `fsync`ed, and the temp file is
/// renamed over `path`; the directory is then `fsync`ed so the rename itself
/// survives a crash. A reader (or a crash) at any instant sees either the
/// old file or the complete new one — never a torn mixture.
pub fn atomic_write_bytes(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("'{}' has no file name to write to", path.display()),
        )
    })?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp_path = dir.join(tmp_name);
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp_path, path)?;
    // Persist the rename: fsync the directory. Failing to sync the directory
    // is not fatal for correctness (the rename is still atomic, merely not
    // yet durable), so a filesystem that refuses directory fsync (some
    // network mounts) degrades gracefully instead of erroring.
    if let Ok(d) = File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// List the checkpoints of run `key` inside `dir`, sorted by cycle
/// ascending. A missing directory is an empty list, not an error.
pub fn list_checkpoints(dir: &Path, key: &str) -> io::Result<Vec<(Cycle, PathBuf)>> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(cycle) = parse_checkpoint_cycle(name, key) {
            found.push((cycle, entry.path()));
        }
    }
    found.sort_unstable();
    Ok(found)
}

/// Delete every checkpoint of run `key` inside `dir` (used after a run
/// completes: its final artifacts are durable, so the intermediate
/// checkpoints are dead weight). Files that vanish concurrently are fine.
pub fn remove_checkpoints(dir: &Path, key: &str) -> io::Result<()> {
    for (_, path) in list_checkpoints(dir, key)? {
        match fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Pre-flight scan of a checkpoint directory: every `*.ckpt` file whose
/// header parses must carry the current format version. Called **before any
/// cell runs** (mirroring the sweep's `SchemaMismatch` gate on
/// `sweep.jsonl`), so a directory of incompatible checkpoints is one clear
/// error up front instead of a per-cell surprise. Torn or garbage files are
/// *not* an error here — they are skipped loudly at resume time, where the
/// affected run can report them.
pub fn validate_checkpoint_dir(dir: &Path) -> Result<(), CheckpointError> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => {
            return Err(CheckpointError::Io {
                path: dir.to_path_buf(),
                source: e,
            })
        }
    };
    for entry in entries {
        let entry = entry.map_err(|e| CheckpointError::Io {
            path: dir.to_path_buf(),
            source: e,
        })?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some(CHECKPOINT_EXT) {
            continue;
        }
        // Only the fixed-size header is needed to read the version field.
        let blob = match fs::read(&path) {
            Ok(b) => b,
            // Unreadable now (e.g. being replaced) — the resume scan deals
            // with it.
            Err(_) => continue,
        };
        match frame::peek_version(&blob) {
            Ok(found) if found != CHECKPOINT_VERSION => {
                return Err(CheckpointError::UnsupportedVersion {
                    path,
                    found,
                    expected: CHECKPOINT_VERSION,
                });
            }
            // Current version, or too torn to even carry a version (the
            // resume scan will skip it loudly).
            Ok(_) | Err(_) => {}
        }
    }
    Ok(())
}

/// Find the newest checkpoint of run `key` (optionally at or before
/// `max_cycle`) whose frame validates, returning its cycle, path and raw
/// payload. Corrupt or unreadable candidates are recorded in `skipped` and
/// the scan falls back to the next-older file; a version mismatch is a hard
/// [`CheckpointError::UnsupportedVersion`].
pub fn latest_valid_payload(
    dir: &Path,
    key: &str,
    max_cycle: Option<Cycle>,
    skipped: &mut Vec<(PathBuf, String)>,
) -> Result<Option<(Cycle, PathBuf, Vec<u8>)>, CheckpointError> {
    let mut files = list_checkpoints(dir, key).map_err(|e| CheckpointError::Io {
        path: dir.to_path_buf(),
        source: e,
    })?;
    if let Some(max) = max_cycle {
        files.retain(|&(cycle, _)| cycle <= max);
    }
    for (cycle, path) in files.into_iter().rev() {
        let blob = match fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                skipped.push((path, format!("unreadable: {e}")));
                continue;
            }
        };
        match frame::unseal_current(&blob) {
            Ok(payload) => return Ok(Some((cycle, path, payload.to_vec()))),
            Err(CkptError::UnsupportedVersion { found, expected }) => {
                return Err(CheckpointError::UnsupportedVersion {
                    path,
                    found,
                    expected,
                });
            }
            Err(e) => skipped.push((path, e.to_string())),
        }
    }
    Ok(None)
}

/// Run a simulation to completion with periodic durable checkpoints,
/// auto-resuming from the newest valid checkpoint when one exists.
///
/// This is the checkpointed counterpart of
/// [`TccSystem::run_bounded_parts`] and produces the **identical**
/// `(RunOutcome, hook)` pair: taking a checkpoint settles the lazy
/// accounting (bit-exact, see [`TccSystem::save_checkpoint`]) and advancing
/// in `every`-sized windows splits every engine jump additively (see
/// [`TccSystem::advance_until`]), so the artifacts of a checkpointed,
/// killed and resumed run are byte-identical to an uninterrupted one — on
/// all three engines. `make_hook` must build a fresh hook with the run's
/// original parameters; on resume its mutable state is overwritten through
/// [`GatingHook::restore`].
pub fn run_checkpointed<H, F>(
    cfg: &SimConfig,
    workload: &WorkloadTrace,
    make_hook: F,
    engine: EngineKind,
    limit: Cycle,
    ckpt: &CheckpointConfig,
) -> Result<(RunOutcome, H, CheckpointRunInfo), CheckpointError>
where
    H: GatingHook,
    F: Fn() -> H,
{
    run_checkpointed_pooled(cfg, workload, make_hook, engine, limit, ckpt, None)
}

/// [`run_checkpointed`] with the windowed engine's lane pool pinned to
/// `lane_pool` instead of the process-wide global pool (`None` keeps the
/// default). Checkpoint bytes and the final artifacts are pool-size
/// independent — the pin only controls how many host threads the windowed
/// engine may fan per-window group lanes onto between snapshots, so
/// differential tests can sweep pool sizes (including across a kill/resume
/// boundary) inside one process.
#[allow(clippy::too_many_arguments)]
pub fn run_checkpointed_pooled<H, F>(
    cfg: &SimConfig,
    workload: &WorkloadTrace,
    make_hook: F,
    engine: EngineKind,
    limit: Cycle,
    ckpt: &CheckpointConfig,
    lane_pool: Option<std::sync::Arc<crate::pool::WorkerPool>>,
) -> Result<(RunOutcome, H, CheckpointRunInfo), CheckpointError>
where
    H: GatingHook,
    F: Fn() -> H,
{
    if ckpt.every == 0 {
        return Err(CheckpointError::ZeroInterval);
    }
    fs::create_dir_all(&ckpt.dir).map_err(|e| CheckpointError::Io {
        path: ckpt.dir.clone(),
        source: e,
    })?;
    let mut info = CheckpointRunInfo {
        engine,
        ..CheckpointRunInfo::default()
    };
    let found = if ckpt.resume {
        latest_valid_payload(&ckpt.dir, &ckpt.key, None, &mut info.skipped)?
    } else {
        None
    };
    let mut sys = match found {
        Some((cycle, path, payload)) => {
            let sys =
                TccSystem::restore_checkpoint(cfg.clone(), workload.clone(), make_hook(), &payload)
                    .map_err(|e| CheckpointError::Restore {
                        path,
                        detail: e.to_string(),
                    })?;
            info.resumed_from = Some(cycle);
            sys
        }
        None => TccSystem::new(cfg.clone(), workload.clone(), make_hook())?,
    };
    // `restore_checkpoint` builds a pool-less system (the pin is host-side
    // runtime state, not machine state), so the pin is applied after either
    // construction path.
    if let Some(pool) = lane_pool {
        sys.set_lane_pool(pool);
    }
    while !sys.is_complete() {
        if sys.now() >= limit {
            return Err(SimError::CycleLimitExceeded { limit }.into());
        }
        let target = sys.now().saturating_add(ckpt.every).min(limit);
        sys.advance_until_engine(target, engine);
        if !sys.is_complete() {
            let blob = frame::seal(&sys.save_checkpoint());
            let path = checkpoint_path(&ckpt.dir, &ckpt.key, sys.now());
            atomic_write_bytes(&path, &blob).map_err(|e| CheckpointError::Io {
                path: path.clone(),
                source: e,
            })?;
            info.checkpoints_written += 1;
        }
    }
    info.windowed = sys.windowed_stats();
    let (outcome, hook) = sys.into_parts();
    Ok((outcome, hook, info))
}

/// What [`replay_to`] found at the target cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// The run identity that was replayed.
    pub key: String,
    /// The requested cycle.
    pub target: Cycle,
    /// The cycle actually reached (equal to `target` unless the run
    /// completes earlier).
    pub reached: Cycle,
    /// Whether every processor had finished by `reached`.
    pub completed: bool,
    /// Cycle of the checkpoint the replay restored (`None` = replayed from
    /// cycle 0; no usable checkpoint at or before `target` existed).
    pub resumed_from: Option<Cycle>,
    /// FNV-1a-64 digest of the machine's full checkpoint payload at
    /// `reached`. Engine-independent by the exactness invariant — two
    /// replays of the same run agree on this digest no matter which engine
    /// or which checkpoint each started from, so diverging digests localize
    /// a determinism bug to before `reached`.
    pub state_digest: u64,
}

/// Time travel: restore the nearest checkpoint of run `key` at or before
/// `target` and fast-forward the machine to exactly `target` (or run
/// completion, whichever is first). Returns the replay report and the list
/// of corrupt checkpoint files skipped during the scan.
pub fn replay_to<H, F>(
    cfg: &SimConfig,
    workload: &WorkloadTrace,
    make_hook: F,
    engine: EngineKind,
    dir: &Path,
    key: &str,
    target: Cycle,
) -> Result<(ReplayReport, Vec<(PathBuf, String)>), CheckpointError>
where
    H: GatingHook,
    F: Fn() -> H,
{
    let mut skipped = Vec::new();
    let found = latest_valid_payload(dir, key, Some(target), &mut skipped)?;
    let (mut sys, resumed_from) = match found {
        Some((cycle, path, payload)) => {
            let sys =
                TccSystem::restore_checkpoint(cfg.clone(), workload.clone(), make_hook(), &payload)
                    .map_err(|e| CheckpointError::Restore {
                        path,
                        detail: e.to_string(),
                    })?;
            (sys, Some(cycle))
        }
        None => (
            TccSystem::new(cfg.clone(), workload.clone(), make_hook())?,
            None,
        ),
    };
    sys.advance_until_engine(target, engine);
    let reached = sys.now();
    let completed = sys.is_complete();
    let state_digest = fnv1a64(&sys.save_checkpoint());
    Ok((
        ReplayReport {
            key: key.to_string(),
            target,
            reached,
            completed,
            resumed_from,
            state_digest,
        },
        skipped,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gating::policy::PolicySpec;
    use htm_workloads::{by_name, WorkloadScale};

    fn test_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("clockgate-ckpt-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    fn machine() -> (SimConfig, WorkloadTrace, PolicySpec) {
        let cfg = SimConfig::table2(4);
        let workload = by_name("intruder", 4, WorkloadScale::Test, 7).expect("known workload");
        (cfg, workload, PolicySpec::ClockGate { w0: 8 })
    }

    #[test]
    fn file_names_round_trip_and_sort_by_cycle() {
        let name = checkpoint_file_name("genome-p8", 12_345);
        assert_eq!(parse_checkpoint_cycle(&name, "genome-p8"), Some(12_345));
        assert_eq!(parse_checkpoint_cycle(&name, "genome-p4"), None);
        assert_eq!(parse_checkpoint_cycle("genome-p8.ckpt", "genome-p8"), None);
        // Zero padding makes lexicographic order numeric.
        assert!(checkpoint_file_name("k", 9) < checkpoint_file_name("k", 10));
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp_file() {
        let dir = test_dir("atomic");
        let path = dir.join("x.ckpt");
        atomic_write_bytes(&path, b"one").unwrap();
        atomic_write_bytes(&path, b"two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"two");
        let names: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(names.len(), 1, "temp file was renamed away: {names:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_run_equals_uninterrupted_run() {
        let (cfg, workload, spec) = machine();
        let hook = spec.build(&cfg);
        let (expected, _) = TccSystem::new(cfg.clone(), workload.clone(), hook)
            .unwrap()
            .run_bounded_parts(1_000_000, EngineKind::FastForward)
            .unwrap();

        for engine in [
            EngineKind::FastForward,
            EngineKind::Naive,
            EngineKind::ShardParallel,
        ] {
            let dir = test_dir(&format!("equal-{}", engine.label()));
            let ckpt = CheckpointConfig::new(&dir, 500, "cell");
            let (outcome, _hook, info) = run_checkpointed(
                &cfg,
                &workload,
                || spec.build(&cfg),
                engine,
                1_000_000,
                &ckpt,
            )
            .unwrap();
            assert_eq!(outcome, expected, "engine {}", engine.label());
            assert!(info.checkpoints_written > 0, "run crossed interval bounds");
            assert_eq!(info.resumed_from, None);
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn resume_from_mid_run_checkpoint_is_bit_exact() {
        let (cfg, workload, spec) = machine();
        let hook = spec.build(&cfg);
        let (expected, _) = TccSystem::new(cfg.clone(), workload.clone(), hook)
            .unwrap()
            .run_bounded_parts(1_000_000, EngineKind::FastForward)
            .unwrap();

        // Simulate a killed run: advance partway, leave one checkpoint.
        let dir = test_dir("resume");
        let mut sys = TccSystem::new(cfg.clone(), workload.clone(), spec.build(&cfg)).unwrap();
        sys.advance_until(700);
        assert!(!sys.is_complete(), "workload still mid-flight at 700");
        let blob = frame::seal(&sys.save_checkpoint());
        atomic_write_bytes(&checkpoint_path(&dir, "cell", sys.now()), &blob).unwrap();
        drop(sys);

        let ckpt = CheckpointConfig::new(&dir, 500, "cell");
        let (outcome, _hook, info) = run_checkpointed(
            &cfg,
            &workload,
            || spec.build(&cfg),
            EngineKind::FastForward,
            1_000_000,
            &ckpt,
        )
        .unwrap();
        assert_eq!(info.resumed_from, Some(700));
        assert_eq!(outcome, expected, "resumed run diverged from uninterrupted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_checkpoint_is_skipped_loudly() {
        let (cfg, workload, spec) = machine();
        let dir = test_dir("corrupt");

        let mut sys = TccSystem::new(cfg.clone(), workload.clone(), spec.build(&cfg)).unwrap();
        sys.advance_until(600);
        let good_cycle = sys.now();
        let blob = frame::seal(&sys.save_checkpoint());
        atomic_write_bytes(&checkpoint_path(&dir, "cell", good_cycle), &blob).unwrap();

        // A newer, torn checkpoint (truncated mid-payload) and one with a
        // flipped payload byte (checksum mismatch).
        fs::write(
            checkpoint_path(&dir, "cell", good_cycle + 50),
            &blob[..blob.len() / 2],
        )
        .unwrap();
        let mut flipped = blob.clone();
        *flipped.last_mut().unwrap() ^= 0xff;
        fs::write(checkpoint_path(&dir, "cell", good_cycle + 100), &flipped).unwrap();

        let mut skipped = Vec::new();
        let found = latest_valid_payload(&dir, "cell", None, &mut skipped)
            .unwrap()
            .expect("good checkpoint found behind the corrupt ones");
        assert_eq!(found.0, good_cycle);
        assert_eq!(skipped.len(), 2, "both corrupt files reported: {skipped:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_format_version_is_a_dedicated_error() {
        let (cfg, workload, spec) = machine();
        let dir = test_dir("version");
        let mut sys = TccSystem::new(cfg, workload, spec.build(&SimConfig::table2(4))).unwrap();
        sys.advance_until(600);
        let stale = frame::seal_with_version(CHECKPOINT_VERSION + 1, &sys.save_checkpoint());
        atomic_write_bytes(&checkpoint_path(&dir, "cell", 600), &stale).unwrap();

        let mut skipped = Vec::new();
        let err = latest_valid_payload(&dir, "cell", None, &mut skipped).unwrap_err();
        assert!(
            matches!(err, CheckpointError::UnsupportedVersion { found, .. }
                if found == CHECKPOINT_VERSION + 1),
            "{err}"
        );
        let err = validate_checkpoint_dir(&dir).unwrap_err();
        assert!(
            matches!(err, CheckpointError::UnsupportedVersion { .. }),
            "{err}"
        );
        assert!(skipped.is_empty(), "a version mismatch is not a skip");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_to_restores_nearest_checkpoint_and_digests_deterministically() {
        let (cfg, workload, spec) = machine();
        let dir = test_dir("replay");
        let ckpt = CheckpointConfig::new(&dir, 400, "cell");
        let (_, _, info) = run_checkpointed(
            &cfg,
            &workload,
            || spec.build(&cfg),
            EngineKind::FastForward,
            1_000_000,
            &ckpt,
        )
        .unwrap();
        assert!(info.checkpoints_written >= 2, "need several checkpoints");

        let (from_ckpt, skipped) = replay_to(
            &cfg,
            &workload,
            || spec.build(&cfg),
            EngineKind::FastForward,
            &dir,
            "cell",
            900,
        )
        .unwrap();
        assert!(skipped.is_empty());
        assert_eq!(from_ckpt.reached, 900);
        assert!(
            from_ckpt.resumed_from.is_some(),
            "a checkpoint before 900 exists"
        );

        // Replaying from scratch (empty dir) must land on the same digest —
        // that is the whole point of the state digest.
        let empty = test_dir("replay-empty");
        let (from_zero, _) = replay_to(
            &cfg,
            &workload,
            || spec.build(&cfg),
            EngineKind::Naive,
            &empty,
            "cell",
            900,
        )
        .unwrap();
        assert_eq!(from_zero.resumed_from, None);
        assert_eq!(from_zero.state_digest, from_ckpt.state_digest);
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&empty);
    }

    #[test]
    fn zero_interval_is_rejected() {
        let (cfg, workload, spec) = machine();
        let dir = test_dir("zero");
        let ckpt = CheckpointConfig {
            every: 0,
            ..CheckpointConfig::new(&dir, 1, "cell")
        };
        let err = match run_checkpointed(
            &cfg,
            &workload,
            || spec.build(&cfg),
            EngineKind::FastForward,
            1_000_000,
            &ckpt,
        ) {
            Err(e) => e,
            Ok(_) => panic!("a zero interval must be rejected"),
        };
        assert!(matches!(err, CheckpointError::ZeroInterval));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_runs_can_clean_their_checkpoints_up() {
        let (cfg, workload, spec) = machine();
        let dir = test_dir("cleanup");
        let ckpt = CheckpointConfig::new(&dir, 400, "cell");
        run_checkpointed(
            &cfg,
            &workload,
            || spec.build(&cfg),
            EngineKind::FastForward,
            1_000_000,
            &ckpt,
        )
        .unwrap();
        assert!(!list_checkpoints(&dir, "cell").unwrap().is_empty());
        remove_checkpoints(&dir, "cell").unwrap();
        assert!(list_checkpoints(&dir, "cell").unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
