//! Simulation front end: builder, policy selection and single-run reports.
//!
//! [`SimulationBuilder`] is the public entry point of the library: it takes a
//! machine description (Table II defaults), a workload (one of the STAMP-like
//! generators or a custom trace) and a contention-policy spec
//! ([`PolicySpec`], historically named [`GatingMode`] — the alias is kept),
//! resolves the spec through the policy registry into a boxed
//! [`crate::gating::policy::PolicyHook`], runs the simulation on the
//! selected stepping engine (the event-driven fast-forward engine by
//! default, or the one-step-per-cycle reference via [`EngineKind::Naive`])
//! and returns a [`SimReport`] containing both the protocol-level outcome
//! and the energy analysis of Section IV.

use serde::{Deserialize, Serialize};

use htm_power::energy::{self, ComparisonReport, EnergyReport};
use htm_power::ledger::{self, EnergyLedgerReport, UncoreActivity};
use htm_power::model::{PowerModel, PowerModelConfig};
use htm_sim::config::SimConfig;
use htm_sim::topology::TopologyConfig;
use htm_sim::Cycle;
use htm_tcc::hooks::GatingHook;
use htm_tcc::stats::RunOutcome;
use htm_tcc::system::{SimError, TccSystem};
use htm_tcc::txn::WorkloadTrace;
use htm_workloads::{by_name, WorkloadScale};

pub use htm_tcc::system::{EngineKind, WindowedStats};

/// The historical name of [`PolicySpec`], kept so that pre-framework callers
/// (and the six legacy variants they construct) compile unchanged.
pub use crate::gating::policy::PolicySpec as GatingMode;
pub use crate::gating::policy::PolicySpec;

use crate::gating::controller::GatingStats;

/// Default safety bound on simulated cycles (well above anything the paper's
/// workloads need; hitting it indicates a protocol bug, and the builder turns
/// it into an error instead of hanging).
pub const DEFAULT_CYCLE_LIMIT: Cycle = 200_000_000;

/// Engine selection for a run: either a fixed [`EngineKind`] or `Auto`,
/// which resolves per run through [`choose_engine`] once the machine and
/// workload are known. This is what the binaries' `--engine auto` flag maps
/// to; every choice produces byte-identical artifacts (the engines are
/// exact), so `Auto` is purely a wall-clock optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Always use this engine.
    Fixed(EngineKind),
    /// Pick the engine per run via [`choose_engine`].
    Auto,
}

impl Default for EngineChoice {
    fn default() -> Self {
        EngineChoice::Fixed(EngineKind::default())
    }
}

impl From<EngineKind> for EngineChoice {
    fn from(kind: EngineKind) -> Self {
        EngineChoice::Fixed(kind)
    }
}

impl EngineChoice {
    /// Short label for artifacts and log lines (`auto` or the fixed engine's
    /// label).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EngineChoice::Fixed(kind) => kind.label(),
            EngineChoice::Auto => "auto",
        }
    }

    /// Parse a `--engine` CLI value. Accepted: `fast` / `fast-forward`,
    /// `naive`, `shard` / `shard-parallel`, `windowed`, `auto`.
    #[must_use]
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "fast" | "fast-forward" => Some(EngineKind::FastForward.into()),
            "naive" => Some(EngineKind::Naive.into()),
            "shard" | "shard-parallel" => Some(EngineKind::ShardParallel.into()),
            "windowed" => Some(EngineKind::Windowed.into()),
            "auto" => Some(EngineChoice::Auto),
            _ => None,
        }
    }

    /// Resolve the choice for a concrete machine and workload.
    #[must_use]
    pub fn resolve(self, cfg: &SimConfig, workload: &WorkloadTrace) -> EngineKind {
        match self {
            EngineChoice::Fixed(kind) => kind,
            EngineChoice::Auto => choose_engine(cfg, workload),
        }
    }
}

/// The `--engine auto` heuristic: pick the engine expected to be fastest
/// for this machine and workload. All engines are byte-exact, so this only
/// trades wall-clock time:
///
/// * On the shared bus (or a sharded fabric collapsed to a single bank
///   channel) there is no cross-shard structure to exploit — the serial
///   event-driven fast-forward engine wins.
/// * On a sharded fabric whose workload decomposes into two or more
///   conflict-isolated islands ([`crate::islands::partition_islands`]), the
///   island engine wins: whole-run parallelism with zero synchronization.
/// * On a sharded fabric whose workload is a single contended island — the
///   case islands cannot touch — the time-windowed conservative PDES engine
///   ([`EngineKind::Windowed`]) still splits most lookahead windows into
///   independent per-bank groups and fans them onto the worker pool. That
///   only pays off when the pool can actually run lanes concurrently: with a
///   single worker (a 1-core container, or `--threads 1`) the windowed
///   engine degenerates to fast-forward plus window bookkeeping, so the
///   heuristic weighs the global pool size and falls back to fast-forward.
#[must_use]
pub fn choose_engine(cfg: &SimConfig, workload: &WorkloadTrace) -> EngineKind {
    if !matches!(cfg.topology, TopologyConfig::Sharded { .. })
        || cfg.topology.effective_banks(cfg.num_dirs) < 2
    {
        return EngineKind::FastForward;
    }
    if crate::islands::partition_islands(cfg, workload).len() > 1 {
        return EngineKind::ShardParallel;
    }
    if crate::pool::WorkerPool::global().workers() > 1 {
        EngineKind::Windowed
    } else {
        EngineKind::FastForward
    }
}

/// Monitoring by-products of one [`SimulationBuilder::run_with_stats`] run:
/// which engine actually drove it (resolved per run under
/// [`EngineChoice::Auto`]) and the windowed-engine counters (all zero under
/// every other engine). Deliberately not part of [`SimReport`]: reports are
/// byte-compared across engines, and these fields are engine-dependent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// The stepping engine that drove the run.
    pub engine: EngineKind,
    /// Windowed-engine counters ([`WindowedStats::default`] unless the
    /// windowed engine ran).
    pub windowed: WindowedStats,
}

/// Result of a single simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// The gating mode that was simulated.
    pub mode_label: String,
    /// Protocol-level outcome (cycles, commits, aborts, state breakdown).
    pub outcome: RunOutcome,
    /// Energy analysis under the Table I power model.
    pub energy: EnergyReport,
    /// Component-resolved energy ledger (core taxonomy + uncore charges +
    /// EDP/ED²P metrics), cross-checked against [`Self::energy`].
    pub ledger: EnergyLedgerReport,
    /// Gating-controller statistics (only for clock-gating modes).
    pub gating: Option<GatingStats>,
}

impl SimReport {
    /// Convenience accessor: total parallel execution time in cycles.
    #[must_use]
    pub fn cycles(&self) -> Cycle {
        self.outcome.total_cycles
    }

    /// Convenience accessor: total energy under the Table I model.
    #[must_use]
    pub fn total_energy(&self) -> f64 {
        self.energy.total_energy
    }
}

/// Compare a gated run against an ungated baseline (both produced by
/// [`SimulationBuilder::run`] for the same workload and machine size).
#[must_use]
pub fn compare_runs(ungated: &SimReport, gated: &SimReport) -> ComparisonReport {
    energy::compare(
        &ungated.outcome,
        &gated.outcome,
        &PowerModel::alpha_21264_65nm(),
    )
}

/// Builder for a single simulation run.
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    config: SimConfig,
    workload: Option<WorkloadTrace>,
    mode: GatingMode,
    power: PowerModelConfig,
    cycle_limit: Cycle,
    engine: EngineChoice,
    debug_perturb: bool,
    lane_pool: Option<std::sync::Arc<crate::pool::WorkerPool>>,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimulationBuilder {
    /// Start from the Table II defaults (8 processors, ungated).
    #[must_use]
    pub fn new() -> Self {
        Self {
            config: SimConfig::default(),
            workload: None,
            mode: GatingMode::Ungated,
            power: PowerModelConfig::alpha_21264_65nm(),
            cycle_limit: DEFAULT_CYCLE_LIMIT,
            engine: EngineChoice::default(),
            debug_perturb: false,
            lane_pool: None,
        }
    }

    /// Pin the worker pool the windowed engine fans per-window group lanes
    /// onto, instead of the process-wide [`crate::pool::WorkerPool::global`]
    /// pool. A one-worker pool forces the sequential in-place path. Every
    /// pool size produces byte-identical artifacts (the lanes are exact);
    /// this knob exists so differential tests can sweep pool sizes inside
    /// one process, where the global pool's size is fixed at first use.
    #[must_use]
    pub fn lane_pool(mut self, pool: std::sync::Arc<crate::pool::WorkerPool>) -> Self {
        self.lane_pool = Some(pool);
        self
    }

    /// Plant the deliberate fast-engine accounting bug
    /// ([`htm_tcc::system::TccSystem::debug_perturb_fast_accounting`]) into
    /// the run. Exists solely so the divergence fuzz harness can prove, end
    /// to end, that it detects a real engine-equivalence violation; never
    /// set this outside that self-test. A perturbed run skips the
    /// shard-parallel island fan-out so the planted bug is guaranteed to be
    /// in the simulated machine (within one system the shard engine is the
    /// fast-forward engine, so its batched accounting is perturbed too —
    /// only the one-step-per-cycle naive engine stays ground truth).
    #[must_use]
    pub fn debug_perturb_fast_accounting(mut self) -> Self {
        self.debug_perturb = true;
        self
    }

    /// Use `n` processors (and `n` directories), keeping the other Table II
    /// parameters.
    #[must_use]
    pub fn processors(mut self, n: usize) -> Self {
        self.config = SimConfig::table2(n);
        self
    }

    /// Use a fully custom machine configuration.
    #[must_use]
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.config = cfg;
        self
    }

    /// Override the L1 data-cache geometry (capacity in KiB, associativity)
    /// of the current configuration. Call *after* [`Self::processors`],
    /// which resets the whole configuration to the Table II defaults for the
    /// given core count. The power model's TCC data-cache factor is
    /// re-derived from the swept capacity
    /// ([`PowerModelConfig::for_l1_geometry`]).
    #[must_use]
    pub fn l1_geometry(mut self, l1_kb: usize, l1_assoc: usize) -> Self {
        self.config = self.config.with_l1_geometry(l1_kb, l1_assoc);
        self.power = self.power.for_l1_geometry(l1_kb);
        self
    }

    /// Swap the interconnect topology of the current configuration (the
    /// Table II default is the shared split-transaction bus). Call *after*
    /// [`Self::processors`], which resets the whole configuration — and with
    /// it the topology — to the Table II defaults.
    ///
    /// On a [`TopologyConfig::Sharded`] fabric the
    /// [`EngineKind::ShardParallel`] engine can simulate conflict-isolated
    /// processor islands on parallel host threads (see
    /// [`crate::islands`]); every topology/engine combination produces
    /// bit-identical outcomes.
    #[must_use]
    pub fn topology(mut self, topology: TopologyConfig) -> Self {
        self.config.topology = topology;
        self
    }

    /// Run a pre-built workload trace.
    #[must_use]
    pub fn workload(mut self, workload: WorkloadTrace) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Generate one of the named STAMP-like workloads (see
    /// [`htm_workloads::workload_names`]) for the configured processor count.
    pub fn workload_by_name(
        mut self,
        name: &str,
        scale: WorkloadScale,
        seed: u64,
    ) -> Result<Self, String> {
        let w = by_name(name, self.config.num_procs, scale, seed)
            .ok_or_else(|| format!("unknown workload '{name}'"))?;
        self.workload = Some(w);
        Ok(self)
    }

    /// Select the abort-handling mode.
    #[must_use]
    pub fn gating(mut self, mode: GatingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Override the power-model configuration (the default derives Table I).
    #[must_use]
    pub fn power_config(mut self, config: PowerModelConfig) -> Self {
        self.power = config;
        self
    }

    /// Sweep the leakage-share (technology-node) axis of the power model.
    #[must_use]
    pub fn leakage_share(mut self, leakage_share: f64) -> Self {
        self.power = self.power.with_leakage_share(leakage_share);
        self
    }

    /// Override the cycle safety bound.
    #[must_use]
    pub fn cycle_limit(mut self, limit: Cycle) -> Self {
        self.cycle_limit = limit;
        self
    }

    /// Select the stepping engine (default: [`EngineKind::FastForward`]).
    /// Accepts a fixed [`EngineKind`] or [`EngineChoice::Auto`], which
    /// resolves per run via [`choose_engine`].
    ///
    /// Every engine produces bit-identical outcomes; the naive engine exists
    /// as the differential-testing ground truth and for timing comparisons.
    #[must_use]
    pub fn engine(mut self, engine: impl Into<EngineChoice>) -> Self {
        self.engine = engine.into();
        self
    }

    /// Run the simulation.
    pub fn run(self) -> Result<SimReport, SimError> {
        self.run_with_stats().map(|(report, _stats)| report)
    }

    /// Run the simulation, additionally returning the resolved engine and
    /// the windowed-engine counters ([`RunStats`]). The report is
    /// byte-identical to [`Self::run`].
    pub fn run_with_stats(self) -> Result<(SimReport, RunStats), SimError> {
        let workload = self
            .workload
            .clone()
            .ok_or_else(|| SimError::BadWorkload("no workload was provided".into()))?;
        let label = self.mode.label();
        let limit = self.cycle_limit;
        let power = self.power;
        let engine = self.engine.resolve(&self.config, &workload);
        let mut windowed = WindowedStats::default();

        // The shard-parallel engine fans conflict-isolated islands out over
        // host threads when the topology and workload allow it; otherwise
        // (and for the serial engines) the policy spec resolves through the
        // registry into a boxed hook and the whole machine runs in-process.
        // `run_bounded_full` hands the hook back with the outcome, so the
        // controller statistics and the policy's uncore-charge declaration
        // come out directly. Both paths are bit-identical.
        let islands_run = if engine == EngineKind::ShardParallel && !self.debug_perturb {
            crate::islands::run_shard_parallel(&self.config, &workload, self.mode, limit)?
        } else {
            None
        };
        let (outcome, gating, charges) = match islands_run {
            Some(run) => (run.outcome, run.gating, run.charges),
            None => {
                let hook = self.mode.build(&self.config);
                let (outcome, hook, wstats) = run_system(
                    self.config.clone(),
                    workload,
                    hook,
                    limit,
                    engine,
                    self.debug_perturb,
                    self.lane_pool.clone(),
                )?;
                windowed = wstats;
                (outcome, hook.gating_stats(), hook.uncore_charges())
            }
        };
        Ok((
            assemble_report(label, &power, outcome, gating, charges),
            RunStats { engine, windowed },
        ))
    }

    /// Run the simulation with periodic durable checkpoints, auto-resuming
    /// from the newest valid checkpoint in `ckpt.dir` for `ckpt.key`.
    ///
    /// Produces a [`SimReport`] byte-identical to [`Self::run`] — taking and
    /// resuming from checkpoints is bit-exact (see [`crate::checkpoint`]).
    /// Under checkpointing the [`EngineKind::ShardParallel`] island fan-out
    /// is skipped and the whole machine runs in-process: within one system
    /// the shard engine *is* the fast-forward engine, so the report is
    /// unchanged — there is simply one coherent machine state to snapshot.
    pub fn run_checkpointed(
        self,
        ckpt: &crate::checkpoint::CheckpointConfig,
    ) -> Result<(SimReport, crate::checkpoint::CheckpointRunInfo), crate::checkpoint::CheckpointError>
    {
        let workload = self.workload.ok_or_else(|| {
            crate::checkpoint::CheckpointError::Sim(SimError::BadWorkload(
                "no workload was provided".into(),
            ))
        })?;
        let label = self.mode.label();
        let engine = self.engine.resolve(&self.config, &workload);
        let (outcome, hook, info) = crate::checkpoint::run_checkpointed_pooled(
            &self.config,
            &workload,
            || self.mode.build(&self.config),
            engine,
            self.cycle_limit,
            ckpt,
            self.lane_pool.clone(),
        )?;
        let (gating, charges) = (hook.gating_stats(), hook.uncore_charges());
        Ok((
            assemble_report(label, &self.power, outcome, gating, charges),
            info,
        ))
    }

    /// Time travel: restore the nearest checkpoint of run `key` in `dir` at
    /// or before `target` and fast-forward to exactly that cycle (see
    /// [`crate::checkpoint::replay_to`]).
    pub fn replay_to(
        self,
        dir: &std::path::Path,
        key: &str,
        target: Cycle,
    ) -> Result<
        (
            crate::checkpoint::ReplayReport,
            Vec<(std::path::PathBuf, String)>,
        ),
        crate::checkpoint::CheckpointError,
    > {
        let workload = self.workload.ok_or_else(|| {
            crate::checkpoint::CheckpointError::Sim(SimError::BadWorkload(
                "no workload was provided".into(),
            ))
        })?;
        let engine = self.engine.resolve(&self.config, &workload);
        crate::checkpoint::replay_to(
            &self.config,
            &workload,
            || self.mode.build(&self.config),
            engine,
            dir,
            key,
            target,
        )
    }
}

/// Assemble the final report from a run's raw parts (shared by the plain and
/// the checkpointed runner so both produce byte-identical artifacts).
fn assemble_report(
    label: String,
    power: &PowerModelConfig,
    outcome: RunOutcome,
    gating: Option<GatingStats>,
    charges: crate::gating::policy::UncoreCharges,
) -> SimReport {
    let energy = energy::analyze(&outcome, &power.factors());
    // The hook declares its own uncore activity (gating-table hardware
    // presence and renewal-time `TxInfoReq` round-trips), so new
    // policies are accounted uniformly without mode-specific knowledge
    // here.
    let uncore = UncoreActivity::from_outcome(
        &outcome,
        charges.gating_hardware,
        charges.renewal_txinfo_roundtrips,
    );
    let ledger = ledger::analyze(&outcome, power, uncore);
    SimReport {
        mode_label: label,
        outcome,
        energy,
        ledger,
        gating,
    }
}

/// Build and run a system with the chosen engine, returning the outcome,
/// the hook, and the windowed-engine counters.
fn run_system<H: GatingHook>(
    cfg: SimConfig,
    workload: WorkloadTrace,
    hook: H,
    limit: Cycle,
    engine: EngineKind,
    debug_perturb: bool,
    lane_pool: Option<std::sync::Arc<crate::pool::WorkerPool>>,
) -> Result<(RunOutcome, H, WindowedStats), SimError> {
    let mut system = TccSystem::new(cfg, workload, hook)?;
    if debug_perturb {
        system.debug_perturb_fast_accounting();
    }
    if let Some(pool) = lane_pool {
        system.set_lane_pool(pool);
    }
    system.run_bounded_full(limit, engine)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mode: GatingMode, workload: &str, procs: usize) -> SimReport {
        SimulationBuilder::new()
            .processors(procs)
            .workload_by_name(workload, WorkloadScale::Test, 11)
            .unwrap()
            .gating(mode)
            .cycle_limit(20_000_000)
            .run()
            .unwrap()
    }

    #[test]
    fn ungated_run_completes_and_is_consistent() {
        let r = run(GatingMode::Ungated, "intruder", 4);
        assert!(r.outcome.total_commits > 0);
        r.outcome.check_consistency().unwrap();
        assert!(r.energy.accounting_discrepancy() < 1e-9);
        assert!(r.gating.is_none());
        assert_eq!(r.outcome.total_gatings, 0);
    }

    #[test]
    fn clock_gated_run_gates_on_contended_workload() {
        let r = run(GatingMode::ClockGate { w0: 8 }, "intruder", 4);
        assert!(r.outcome.total_commits > 0);
        r.outcome.check_consistency().unwrap();
        let g = r
            .gating
            .expect("clock-gating mode reports controller stats");
        assert!(g.gatings > 0, "the contended workload must trigger gating");
        // The controller logs one gating per directory-local abort, so it can
        // record more gatings than the number of times the processor actually
        // transitioned into the gated state.
        assert!(g.gatings >= r.outcome.total_gatings);
        assert!(r.outcome.total_gatings > 0);
        assert!(r.outcome.total_gated_cycles() > 0);
    }

    #[test]
    fn both_modes_commit_the_same_number_of_transactions() {
        let ungated = run(GatingMode::Ungated, "intruder", 4);
        let gated = run(GatingMode::ClockGate { w0: 8 }, "intruder", 4);
        assert_eq!(ungated.outcome.total_commits, gated.outcome.total_commits);
    }

    #[test]
    fn gating_converts_spin_into_gated_cycles() {
        // At the tiny `Test` scale the energy outcome is dominated by cold
        // misses and start-up effects, so this test checks the mechanism (a
        // substantial amount of processor time moves into the gated state and
        // wasted re-execution shrinks) rather than the headline energy number;
        // the full-scale energy comparison is exercised by the `reproduce`
        // harness and reported in docs/REPRODUCING.md.
        let ungated = run(GatingMode::Ungated, "intruder", 8);
        let gated = run(GatingMode::ClockGate { w0: 8 }, "intruder", 8);
        let cmp = compare_runs(&ungated, &gated);
        assert!(cmp.gated_cycles_total > 0);
        assert!(
            gated.outcome.total_aborts <= ungated.outcome.total_aborts,
            "gating-aware contention management must not increase the abort count \
             (gated {} vs ungated {})",
            gated.outcome.total_aborts,
            ungated.outcome.total_aborts
        );
        assert!(cmp.energy_reduction.is_finite() && cmp.energy_reduction > 0.0);
    }

    #[test]
    fn zero_commit_run_yields_finite_degenerate_metrics() {
        // A workload with no transactions at all: the run ends at cycle 0
        // with zero commits. Every ledger-derived metric must stay finite
        // (energy_per_commit defined as 0), for every policy family, so
        // such a cell can never inject NaN/∞ into sweep artifacts.
        use htm_tcc::txn::{ThreadTrace, WorkloadTrace};
        let empty = WorkloadTrace::new("empty", vec![ThreadTrace::default(); 4]);
        for mode in [
            GatingMode::Ungated,
            GatingMode::ClockGate { w0: 8 },
            GatingMode::Throttle { w0: 8 },
            GatingMode::Oracle,
        ] {
            let r = SimulationBuilder::new()
                .processors(4)
                .workload(empty.clone())
                .gating(mode)
                .run()
                .unwrap();
            assert_eq!(r.outcome.total_commits, 0, "{mode:?}");
            assert_eq!(r.ledger.energy_per_commit, 0.0, "{mode:?}");
            assert_eq!(r.ledger.edp, 0.0, "{mode:?}");
            assert_eq!(r.ledger.ed2p, 0.0, "{mode:?}");
            for value in [
                r.ledger.energy_per_commit,
                r.ledger.edp,
                r.ledger.ed2p,
                r.ledger.average_power,
                r.energy.average_power,
                r.total_energy(),
            ] {
                assert!(value.is_finite(), "{mode:?} produced non-finite {value}");
            }
        }
    }

    #[test]
    fn missing_workload_is_an_error() {
        let err = SimulationBuilder::new()
            .gating(GatingMode::Ungated)
            .run()
            .err()
            .unwrap();
        assert!(matches!(err, SimError::BadWorkload(_)));
    }

    #[test]
    fn unknown_workload_name_is_an_error() {
        let err = SimulationBuilder::new()
            .workload_by_name("nope", WorkloadScale::Test, 1)
            .err();
        assert!(err.is_some());
    }

    #[test]
    fn exponential_backoff_mode_runs() {
        let r = run(
            GatingMode::ExponentialBackoff { base: 32, cap: 8 },
            "intruder",
            4,
        );
        assert!(r.outcome.total_commits > 0);
        assert_eq!(r.outcome.total_gatings, 0);
        assert!(r.gating.is_none());
    }

    #[test]
    fn ablation_modes_run_and_gate() {
        for mode in [
            GatingMode::ClockGateFixedWindow { window: 64 },
            GatingMode::ClockGateNoRenew { w0: 8 },
            GatingMode::ClockGateLinear { w0: 8 },
        ] {
            let r = run(mode, "intruder", 4);
            assert!(r.outcome.total_commits > 0, "{:?} must complete", mode);
            assert!(r.gating.unwrap().gatings > 0, "{:?} must gate", mode);
        }
    }

    #[test]
    fn mode_labels_are_distinct() {
        let labels: std::collections::HashSet<String> = [
            GatingMode::Ungated,
            GatingMode::ExponentialBackoff { base: 16, cap: 8 },
            GatingMode::ClockGate { w0: 8 },
            GatingMode::ClockGateFixedWindow { window: 64 },
            GatingMode::ClockGateNoRenew { w0: 8 },
            GatingMode::ClockGateLinear { w0: 8 },
            GatingMode::AdaptiveW0 { w0: 8 },
            GatingMode::Hybrid {
                gate_limit: 2,
                w0: 8,
                base: 32,
                cap: 8,
            },
            GatingMode::Throttle { w0: 8 },
            GatingMode::Oracle,
        ]
        .iter()
        .map(GatingMode::label)
        .collect();
        assert_eq!(labels.len(), 10);
    }

    #[test]
    fn exponential_backoff_label_includes_the_cap() {
        // Two configs differing only in cap must not render identically.
        let a = GatingMode::ExponentialBackoff { base: 32, cap: 4 };
        let b = GatingMode::ExponentialBackoff { base: 32, cap: 8 };
        assert_ne!(a.label(), b.label());
        assert_eq!(b.label(), "backoff(base=32,cap=8)");
    }

    #[test]
    fn adaptive_w0_runs_gates_and_reports_controller_stats() {
        let r = run(GatingMode::AdaptiveW0 { w0: 8 }, "intruder", 4);
        assert!(r.outcome.total_commits > 0);
        r.outcome.check_consistency().unwrap();
        let g = r
            .gating
            .expect("adaptive policy drives the gating protocol");
        assert!(g.gatings > 0);
        assert!(r.outcome.total_gated_cycles() > 0);
        assert_eq!(
            r.outcome
                .state_cycles
                .iter()
                .map(|s| s.throttled)
                .sum::<u64>(),
            0
        );
    }

    #[test]
    fn hybrid_policy_gates_then_backs_off() {
        let r = run(
            GatingMode::Hybrid {
                gate_limit: 1,
                w0: 8,
                base: 16,
                cap: 6,
            },
            "intruder",
            4,
        );
        assert!(r.outcome.total_commits > 0);
        r.outcome.check_consistency().unwrap();
        assert!(r.gating.expect("hybrid reports its gating phase").gatings > 0);
        assert!(r.outcome.total_gatings > 0);
    }

    #[test]
    fn throttle_policy_trades_gated_cycles_for_throttled_ones() {
        let r = run(GatingMode::Throttle { w0: 8 }, "intruder", 4);
        assert!(r.outcome.total_commits > 0);
        r.outcome.check_consistency().unwrap();
        assert!(r.gating.is_none(), "no Stop Clock protocol, no stats");
        assert_eq!(r.outcome.total_gatings, 0);
        assert_eq!(r.outcome.total_gated_cycles(), 0);
        assert!(
            r.outcome.total_throttled_cycles() > 0,
            "the contended workload must spend time throttled"
        );
        assert!(r.energy.breakdown.throttled > 0.0);
        // The ledger's exactness contract holds with the fifth state active.
        assert!(r.ledger.core_discrepancy() < 1e-12);
        assert!(r.ledger.interval_discrepancy() < 1e-9);
        // Gating hardware is declared, so its table leakage is charged.
        use htm_power::ledger::EnergyComponent;
        assert!(r.ledger.component_energy(EnergyComponent::GatingControl) > 0.0);
        assert_eq!(
            r.outcome.total_txinfo_roundtrips(),
            0,
            "throttling never answers Gate, so no abort-time TxInfoReqs"
        );
    }

    #[test]
    fn oracle_policy_gates_without_any_renewal_traffic() {
        let oracle = run(GatingMode::Oracle, "intruder", 4);
        assert!(oracle.outcome.total_commits > 0);
        oracle.outcome.check_consistency().unwrap();
        let g = oracle.gating.expect("oracle reports subscription stats");
        assert!(g.gatings > 0);
        assert_eq!(g.renewals, 0, "the oracle never renews");
        assert_eq!(g.ungate_null_reply + g.ungate_different_tx, 0);
        assert!(oracle.outcome.total_gated_cycles() > 0);
        // Every wake is driven by the commit-subscription channel; the
        // victim is gated for exactly as long as its conflictor needs, so
        // per gating episode the oracle wastes nothing on mistimed windows.
        // (No claim about total cycles vs. a heuristic: changing wake
        // timing changes the whole interleaving, which can serendipitously
        // favor either side on a given seed.)
        assert_eq!(g.total_ungates(), g.ungate_aborter_gone);
        // It still commits the same transactions as the ungated baseline.
        let ungated = run(GatingMode::Ungated, "intruder", 4);
        assert_eq!(oracle.outcome.total_commits, ungated.outcome.total_commits);
    }

    #[test]
    fn swept_cache_geometry_runs_and_differs_from_default() {
        let small = SimulationBuilder::new()
            .processors(4)
            .l1_geometry(4, 1)
            .workload_by_name("intruder", WorkloadScale::Test, 11)
            .unwrap()
            .gating(GatingMode::Ungated)
            .cycle_limit(20_000_000)
            .run()
            .unwrap();
        let default = run(GatingMode::Ungated, "intruder", 4);
        assert!(small.outcome.total_commits > 0);
        small.outcome.check_consistency().unwrap();
        assert!(
            small.cycles() >= default.cycles(),
            "a 4KB direct-mapped L1 cannot beat the 64KB 2-way default \
             ({} vs {} cycles)",
            small.cycles(),
            default.cycles()
        );
    }

    #[test]
    fn invalid_cache_geometry_is_a_config_error() {
        let err = SimulationBuilder::new()
            .processors(4)
            .l1_geometry(48, 2)
            .workload_by_name("intruder", WorkloadScale::Test, 11)
            .unwrap()
            .run()
            .err()
            .unwrap();
        assert!(matches!(err, SimError::BadConfig(_)));
    }

    #[test]
    fn ledger_core_subset_reproduces_the_legacy_accounting() {
        for mode in [
            GatingMode::Ungated,
            GatingMode::ClockGate { w0: 8 },
            GatingMode::ClockGateNoRenew { w0: 8 },
        ] {
            let r = run(mode, "intruder", 4);
            assert!(
                r.ledger.core_discrepancy() < 1e-12,
                "{mode:?}: core {} vs legacy {}",
                r.ledger.core_energy,
                r.ledger.legacy_total
            );
            assert!(r.ledger.interval_discrepancy() < 1e-9, "{mode:?}");
            assert!((r.ledger.legacy_total - r.energy.total_energy).abs() < 1e-9);
            assert!(r.ledger.uncore_energy > 0.0, "uncore is always charged");
            assert!(r.ledger.total_energy > r.energy.total_energy);
        }
    }

    #[test]
    fn gating_modes_charge_the_gating_tables_and_txinfo_traffic() {
        let ungated = run(GatingMode::Ungated, "intruder", 4);
        let gated = run(GatingMode::ClockGate { w0: 8 }, "intruder", 4);
        use htm_power::ledger::EnergyComponent;
        assert_eq!(
            ungated
                .ledger
                .component_energy(EnergyComponent::GatingControl),
            0.0,
            "no gating hardware, no gating-control energy"
        );
        assert!(
            gated
                .ledger
                .component_energy(EnergyComponent::GatingControl)
                > 0.0,
            "gating mode pays for its tables, timers and TxInfoReq traffic"
        );
        assert!(gated.outcome.total_txinfo_roundtrips() > 0);
        assert_eq!(ungated.outcome.total_txinfo_roundtrips(), 0);
    }

    #[test]
    fn leakage_share_axis_flows_into_the_report() {
        let base = run(GatingMode::ClockGate { w0: 8 }, "intruder", 4);
        let leaky = SimulationBuilder::new()
            .processors(4)
            .workload_by_name("intruder", WorkloadScale::Test, 11)
            .unwrap()
            .gating(GatingMode::ClockGate { w0: 8 })
            .cycle_limit(20_000_000)
            .leakage_share(0.40)
            .run()
            .unwrap();
        // Same protocol outcome, different energy accounting.
        assert_eq!(base.outcome, leaky.outcome);
        assert!(
            leaky.energy.breakdown.gated > base.energy.breakdown.gated,
            "doubling leakage must make gated cycles more expensive"
        );
        assert!(leaky.ledger.core_discrepancy() < 1e-12);
    }

    #[test]
    fn deterministic_reports_for_identical_builders() {
        let a = run(GatingMode::ClockGate { w0: 8 }, "genome", 4);
        let b = run(GatingMode::ClockGate { w0: 8 }, "genome", 4);
        assert_eq!(a.outcome.total_cycles, b.outcome.total_cycles);
        assert_eq!(a.outcome.total_aborts, b.outcome.total_aborts);
        assert!((a.total_energy() - b.total_energy()).abs() < 1e-9);
    }
}
