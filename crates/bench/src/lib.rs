//! # htm-bench — benchmark and reproduction harness
//!
//! This crate hosts
//!
//! * the `reproduce` binary, which regenerates every table and figure of the
//!   paper (`cargo run --release -p htm-bench --bin reproduce -- all`), and
//! * one Criterion benchmark per table/figure plus ablation and
//!   simulator-throughput benches (`cargo bench`).
//!
//! The Criterion benches intentionally run reduced workload scales so that
//! `cargo bench --workspace` completes in minutes; the `reproduce` binary is
//! the one that runs the full-scale evaluation matrix.

#![warn(missing_docs)]

use clockgate_htm::experiments::ExperimentConfig;
use htm_workloads::WorkloadScale;

/// Experiment configuration used by the Criterion benches: one processor
/// count, small workloads, the paper's `W0`.
#[must_use]
pub fn bench_config(procs: usize) -> ExperimentConfig {
    ExperimentConfig {
        processor_counts: vec![procs],
        scale: WorkloadScale::Small,
        ..ExperimentConfig::default()
    }
}

/// Experiment configuration used by the `reproduce` binary: the paper's full
/// matrix (4, 8 and 16 processors, full-scale workloads).
#[must_use]
pub fn full_config() -> ExperimentConfig {
    ExperimentConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_reduced() {
        let cfg = bench_config(4);
        assert_eq!(cfg.processor_counts, vec![4]);
        assert_eq!(cfg.w0, 8);
    }

    #[test]
    fn full_config_matches_paper() {
        assert_eq!(full_config().processor_counts, vec![4, 8, 16]);
    }
}
