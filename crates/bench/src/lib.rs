//! # htm-bench — benchmark and reproduction harness
//!
//! This crate hosts
//!
//! * the `reproduce` binary, which regenerates every table and figure of the
//!   paper (`cargo run --release -p htm-bench --bin reproduce -- all`),
//! * the `sweep` binary, which runs the sensitivity grids of
//!   `clockgate_htm::sweep` and reports energy-vs-time Pareto frontiers
//!   (`cargo run --release -p htm-bench --bin sweep -- --grid w0`), and
//! * one Criterion benchmark per table/figure plus ablation and
//!   simulator-throughput benches (`cargo bench`).
//!
//! The Criterion benches intentionally run reduced workload scales so that
//! `cargo bench --workspace` completes in minutes; the `reproduce` binary is
//! the one that runs the full-scale evaluation matrix.
//!
//! ```
//! // The benches share one reduced configuration per processor count.
//! let cfg = htm_bench::bench_config(4);
//! assert_eq!(cfg.processor_counts, vec![4]);
//! assert_eq!(cfg.w0, 8, "the paper's W0");
//! assert_eq!(htm_bench::full_config().processor_counts, vec![4, 8, 16]);
//! ```

#![warn(missing_docs)]

pub mod divergence;

use clockgate_htm::experiments::ExperimentConfig;
use htm_workloads::WorkloadScale;

/// Experiment configuration used by the Criterion benches: one processor
/// count, small workloads, the paper's `W0`.
#[must_use]
pub fn bench_config(procs: usize) -> ExperimentConfig {
    ExperimentConfig {
        processor_counts: vec![procs],
        scale: WorkloadScale::Small,
        ..ExperimentConfig::default()
    }
}

/// Experiment configuration used by the `reproduce` binary: the paper's full
/// matrix (4, 8 and 16 processors, full-scale workloads).
#[must_use]
pub fn full_config() -> ExperimentConfig {
    ExperimentConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_reduced() {
        let cfg = bench_config(4);
        assert_eq!(cfg.processor_counts, vec![4]);
        assert_eq!(cfg.w0, 8);
    }

    #[test]
    fn full_config_matches_paper() {
        assert_eq!(full_config().processor_counts, vec![4, 8, 16]);
    }
}
