//! Divergence-hunting fuzz harness for the stepping engines.
//!
//! The simulator's core robustness claim is the exactness invariant: the
//! event-driven fast-forward engine, the shard-parallel island engine and
//! the time-windowed conservative PDES engine must reproduce the
//! one-step-per-cycle naive reference engine *byte for byte* in every
//! report field, for every machine configuration and every workload trace. The `engine_differential` suite pins that claim on fixed
//! grids and proptest-generated traces; this module hunts for violations
//! adversarially and, when it finds one, boils it down to the smallest
//! reproducing case:
//!
//! 1. [`random_case`] samples a configuration point (processor count ×
//!    topology × contention policy × L1 geometry) together with a small
//!    conflict-heavy transaction trace — usually drawn from the same raw
//!    shape the proptest differential suite generates, but about a quarter
//!    of the cases instead seed their threads from a truncated
//!    [`htm_workloads::CORPUS_WORKLOADS`] scenario (the STAMP-style kernels
//!    and adversarial microbenchmarks), so realistic hotspot/zipfian/ring
//!    access patterns reach the engine diff too; [`mutate_case`] perturbs an
//!    existing case the way a coverage-guided fuzzer would.
//! 2. [`run_case`] runs the case on all four engines — the windowed engine
//!    both serially and with a pinned four-worker lane pool
//!    (`parallel-windowed`), so the lane fan-out is fuzzed even on one-core
//!    hosts — and diffs the full serialized [`SimReport`]s **field-wise**
//!    (flattened JSON paths, so a single drifting counter is named
//!    precisely).
//! 3. [`shrink_case`] greedily minimizes a diverging case — dropping
//!    threads, transactions and operations, zeroing compute — while the
//!    divergence persists (the vendored proptest compat crate does not
//!    shrink, so the harness brings its own delta-debugger).
//! 4. [`render_case`] / [`parse_case`] give every case a stable textual
//!    `.case` form, so found divergences are committed and replayed as
//!    regression tests.
//!
//! The harness proves it can catch real bugs via
//! [`SimulationBuilder::debug_perturb_fast_accounting`]: a deliberately
//! planted fast-engine accounting bug that the fuzz loop must detect and
//! shrink (see the `--inject-bug` flag of the `divergence` binary and the
//! `divergence_cases` integration test).

use clockgate_htm::report::to_json;
use clockgate_htm::sim::{EngineKind, GatingMode, SimReport, SimulationBuilder};
use htm_sim::rng::DeterministicRng;
use htm_sim::topology::TopologyConfig;
use htm_tcc::system::SimError;
use htm_tcc::txn::{Op, ThreadTrace, Transaction, WorkloadTrace};

/// Cycle bound for fuzz runs; the generated traces are tiny, so hitting the
/// bound means the case deadlocked the protocol — itself a reportable bug.
const CASE_CYCLE_LIMIT: u64 = 50_000_000;

/// Address pool the generator draws from. Kept deliberately small (two
/// lines per 4 KiB directory segment across four segments) so conflicts,
/// aborts, gating and renewals are common — the interesting engine paths.
const ADDR_POOL: [u64; 8] = [0, 64, 128, 192, 4096, 4160, 8192, 12288];

/// Configuration-point palettes the fuzzer samples from. Every entry is a
/// valid machine, so a generated or mutated case can never fail to build.
const TOPOLOGIES: [&str; 4] = ["bus", "sharded", "sharded:2", "sharded:0:mesh"];
const L1_GEOMETRIES: [(usize, usize); 3] = [(64, 2), (16, 2), (4, 1)];

/// Every contention-policy family of the registry, with the parameters the
/// differential suite uses.
#[must_use]
pub fn policy_palette() -> [GatingMode; 10] {
    [
        GatingMode::Ungated,
        GatingMode::ExponentialBackoff { base: 16, cap: 8 },
        GatingMode::ClockGate { w0: 8 },
        GatingMode::ClockGateFixedWindow { window: 64 },
        GatingMode::ClockGateNoRenew { w0: 8 },
        GatingMode::ClockGateLinear { w0: 8 },
        GatingMode::AdaptiveW0 { w0: 8 },
        GatingMode::Hybrid {
            gate_limit: 2,
            w0: 8,
            base: 16,
            cap: 8,
        },
        GatingMode::Throttle { w0: 8 },
        GatingMode::Oracle,
    ]
}

/// One transaction of a fuzz case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseTx {
    /// Static transaction id (the simulated PC of the atomic block).
    pub tx_id: u64,
    /// Non-transactional compute cycles before the transaction starts.
    pub pre: u64,
    /// The transaction body.
    pub ops: Vec<Op>,
}

/// A complete, self-contained divergence case: one machine configuration
/// point plus an explicit per-thread transaction trace. The processor count
/// is the number of threads.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    /// Interconnect topology, in [`TopologyConfig::parse`] syntax.
    pub topology: String,
    /// Contention policy under test.
    pub policy: GatingMode,
    /// L1 data-cache capacity in KiB.
    pub l1_kb: usize,
    /// L1 data-cache associativity.
    pub l1_assoc: usize,
    /// Explicit transaction trace, one entry per thread/processor.
    pub threads: Vec<Vec<CaseTx>>,
}

impl CaseSpec {
    /// Number of simulated processors (one per thread).
    #[must_use]
    pub fn procs(&self) -> usize {
        self.threads.len()
    }

    /// Total number of operations across every transaction (the size the
    /// shrinker minimizes).
    #[must_use]
    pub fn total_ops(&self) -> usize {
        self.threads
            .iter()
            .flat_map(|txs| txs.iter())
            .map(|tx| tx.ops.len())
            .sum()
    }

    /// Materialize the case's trace as a runnable workload.
    #[must_use]
    pub fn workload(&self) -> WorkloadTrace {
        let threads = self
            .threads
            .iter()
            .map(|txs| {
                ThreadTrace::new(
                    txs.iter()
                        .map(|tx| Transaction::with_pre_compute(tx.tx_id, tx.pre, tx.ops.clone()))
                        .collect(),
                )
            })
            .collect();
        WorkloadTrace::new("divergence-case", threads)
    }
}

// ---------------------------------------------------------------------------
// Textual `.case` format
// ---------------------------------------------------------------------------

/// Render a case in the textual `.case` format parsed by [`parse_case`].
///
/// The format is line-oriented and stable: a header naming the machine
/// configuration point, then one `thread` marker per thread followed by its
/// `tx` lines. `#` starts a comment.
#[must_use]
pub fn render_case(case: &CaseSpec) -> String {
    let mut out = String::new();
    out.push_str("# htm divergence case v1\n");
    out.push_str(&format!("topology {}\n", case.topology));
    out.push_str(&format!("policy {}\n", case.policy.slug()));
    out.push_str(&format!("l1 {} {}\n", case.l1_kb, case.l1_assoc));
    for txs in &case.threads {
        out.push_str("thread\n");
        for tx in txs {
            out.push_str(&format!("tx id={:#x} pre={}", tx.tx_id, tx.pre));
            for op in &tx.ops {
                match op {
                    Op::Read(a) => out.push_str(&format!(" r{a}")),
                    Op::Write(a) => out.push_str(&format!(" w{a}")),
                    Op::Compute(c) => out.push_str(&format!(" c{c}")),
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Parse a policy slug as produced by [`GatingMode::slug`].
fn parse_policy(slug: &str) -> Option<GatingMode> {
    fn num(s: &str, prefix: &str) -> Option<u64> {
        s.strip_prefix(prefix)?.parse().ok()
    }
    if slug == "ungated" {
        return Some(GatingMode::Ungated);
    }
    if slug == "oracle" {
        return Some(GatingMode::Oracle);
    }
    if let Some(rest) = slug.strip_prefix("backoff-") {
        let (b, c) = rest.split_once('-')?;
        return Some(GatingMode::ExponentialBackoff {
            base: num(b, "b")?,
            cap: num(c, "c")? as u32,
        });
    }
    if let Some(rest) = slug.strip_prefix("hyb-") {
        let mut parts = rest.split('-');
        return Some(GatingMode::Hybrid {
            gate_limit: num(parts.next()?, "g")? as u32,
            w0: num(parts.next()?, "w")?,
            base: num(parts.next()?, "b")?,
            cap: num(parts.next()?, "c")? as u32,
        });
    }
    if let Some(rest) = slug.strip_prefix("cgfix-") {
        return Some(GatingMode::ClockGateFixedWindow {
            window: rest.parse().ok()?,
        });
    }
    for (prefix, make) in [
        (
            "cg-w",
            (|w0| GatingMode::ClockGate { w0 }) as fn(u64) -> GatingMode,
        ),
        ("cgnr-w", |w0| GatingMode::ClockGateNoRenew { w0 }),
        ("cglin-w", |w0| GatingMode::ClockGateLinear { w0 }),
        ("cgad-w", |w0| GatingMode::AdaptiveW0 { w0 }),
        ("thr-w", |w0| GatingMode::Throttle { w0 }),
    ] {
        if let Some(rest) = slug.strip_prefix(prefix) {
            return Some(make(rest.parse().ok()?));
        }
    }
    None
}

/// Parse the textual `.case` format produced by [`render_case`].
///
/// # Errors
/// Returns a message naming the offending line on any syntax error.
pub fn parse_case(text: &str) -> Result<CaseSpec, String> {
    let mut topology: Option<String> = None;
    let mut policy: Option<GatingMode> = None;
    let mut l1: Option<(usize, usize)> = None;
    let mut threads: Vec<Vec<CaseTx>> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let mut words = line.split_whitespace();
        match words.next() {
            Some("topology") => {
                let t = words
                    .next()
                    .ok_or(format!("line {lineno}: topology needs a value"))?;
                TopologyConfig::parse(t).ok_or(format!("line {lineno}: unknown topology `{t}`"))?;
                topology = Some(t.to_string());
            }
            Some("policy") => {
                let p = words
                    .next()
                    .ok_or(format!("line {lineno}: policy needs a slug"))?;
                policy =
                    Some(parse_policy(p).ok_or(format!("line {lineno}: unknown policy `{p}`"))?);
            }
            Some("l1") => {
                let kb = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or(format!("line {lineno}: l1 needs `l1 KB ASSOC`"))?;
                let assoc = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or(format!("line {lineno}: l1 needs `l1 KB ASSOC`"))?;
                l1 = Some((kb, assoc));
            }
            Some("thread") => threads.push(Vec::new()),
            Some("tx") => {
                let thread = threads
                    .last_mut()
                    .ok_or(format!("line {lineno}: `tx` before any `thread`"))?;
                let mut tx_id: Option<u64> = None;
                let mut pre = 0u64;
                let mut ops = Vec::new();
                for word in words {
                    if let Some(id) = word.strip_prefix("id=") {
                        let parsed = if let Some(hex) = id.strip_prefix("0x") {
                            u64::from_str_radix(hex, 16)
                        } else {
                            id.parse()
                        };
                        tx_id =
                            Some(parsed.map_err(|_| format!("line {lineno}: bad tx id `{id}`"))?);
                    } else if let Some(p) = word.strip_prefix("pre=") {
                        pre = p
                            .parse()
                            .map_err(|_| format!("line {lineno}: bad pre `{p}`"))?;
                    } else {
                        let (kind, rest) = word.split_at(1);
                        let n: u64 = rest
                            .parse()
                            .map_err(|_| format!("line {lineno}: bad op `{word}`"))?;
                        ops.push(match kind {
                            "r" => Op::Read(n),
                            "w" => Op::Write(n),
                            "c" => Op::Compute(n),
                            _ => return Err(format!("line {lineno}: bad op `{word}`")),
                        });
                    }
                }
                thread.push(CaseTx {
                    tx_id: tx_id.ok_or(format!("line {lineno}: tx needs id=..."))?,
                    pre,
                    ops,
                });
            }
            Some(other) => return Err(format!("line {lineno}: unknown directive `{other}`")),
            None => unreachable!("blank lines were skipped"),
        }
    }
    Ok(CaseSpec {
        topology: topology.ok_or("missing `topology` line".to_string())?,
        policy: policy.ok_or("missing `policy` line".to_string())?,
        l1_kb: l1.ok_or("missing `l1` line".to_string())?.0,
        l1_assoc: l1.unwrap().1,
        threads,
    })
}

// ---------------------------------------------------------------------------
// Case generation and mutation
// ---------------------------------------------------------------------------

fn random_tx(rng: &mut DeterministicRng, thread: u64, idx: u64) -> CaseTx {
    let tx_id = (thread << 16) | idx | 0x1000;
    let pre = rng.gen_range(11);
    let ops = (0..1 + rng.gen_range(5))
        .map(|_| match rng.gen_range(3) {
            0 => Op::Read(ADDR_POOL[rng.gen_index(ADDR_POOL.len())]),
            1 => Op::Write(ADDR_POOL[rng.gen_index(ADDR_POOL.len())]),
            _ => Op::Compute(1 + rng.gen_range(59)),
        })
        .collect();
    CaseTx { tx_id, pre, ops }
}

/// Seed case threads from a registered corpus scenario: generate the named
/// workload at `Test` scale and truncate it (first transactions of each
/// thread, first ops of each transaction) so the case stays small enough to
/// run on all three engines and shrink quickly, while keeping the scenario's
/// characteristic access pattern (hot counters, zipfian pools, ring slots).
fn scenario_threads(rng: &mut DeterministicRng, name: &str) -> Vec<Vec<CaseTx>> {
    let procs = 2 + rng.gen_index(3);
    let seed = rng.gen_range(64);
    let workload = htm_workloads::by_name(name, procs, htm_workloads::WorkloadScale::Test, seed)
        .expect("corpus workload names are registered");
    workload
        .threads
        .iter()
        .map(|t| {
            t.transactions
                .iter()
                .take(3)
                .map(|tx| CaseTx {
                    tx_id: tx.tx_id,
                    pre: tx.pre_compute.min(10),
                    ops: tx.ops.iter().take(8).cloned().collect(),
                })
                .collect()
        })
        .collect()
}

/// Sample a random case: a configuration point from the palettes and a
/// small conflict-heavy trace — either 2–4 threads of 1–4 random
/// transactions (1–5 ops each over a small shared address pool so conflicts
/// are likely), or, for about one case in four, a truncated
/// [`htm_workloads::CORPUS_WORKLOADS`] scenario.
#[must_use]
pub fn random_case(rng: &mut DeterministicRng) -> CaseSpec {
    let threads = if rng.gen_range(4) == 0 {
        let name =
            htm_workloads::CORPUS_WORKLOADS[rng.gen_index(htm_workloads::CORPUS_WORKLOADS.len())];
        scenario_threads(rng, name)
    } else {
        (0..2 + rng.gen_range(3))
            .map(|t| {
                (0..1 + rng.gen_range(4))
                    .map(|x| random_tx(rng, t, x))
                    .collect()
            })
            .collect()
    };
    CaseSpec {
        topology: TOPOLOGIES[rng.gen_index(TOPOLOGIES.len())].to_string(),
        policy: policy_palette()[rng.gen_index(10)],
        l1_kb: L1_GEOMETRIES[rng.gen_index(3)].0,
        l1_assoc: L1_GEOMETRIES[rng.gen_index(3)].1,
        threads,
    }
}

/// Mutate an existing case: one random structural or configuration-point
/// change (flip an op, re-aim an address, perturb compute, append an op or
/// transaction, or move to a neighboring machine configuration). Palettes
/// keep every mutant valid.
#[must_use]
pub fn mutate_case(rng: &mut DeterministicRng, case: &CaseSpec) -> CaseSpec {
    let mut next = case.clone();
    match rng.gen_range(6) {
        0 => next.topology = TOPOLOGIES[rng.gen_index(TOPOLOGIES.len())].to_string(),
        1 => next.policy = policy_palette()[rng.gen_index(10)],
        2 => {
            let (kb, assoc) = L1_GEOMETRIES[rng.gen_index(3)];
            next.l1_kb = kb;
            next.l1_assoc = assoc;
        }
        3 => {
            // Flip one op in place.
            let t = rng.gen_index(next.threads.len());
            if let Some(tx) = next.threads[t].first_mut() {
                if !tx.ops.is_empty() {
                    let k = rng.gen_index(tx.ops.len());
                    tx.ops[k] = match rng.gen_range(3) {
                        0 => Op::Read(ADDR_POOL[rng.gen_index(ADDR_POOL.len())]),
                        1 => Op::Write(ADDR_POOL[rng.gen_index(ADDR_POOL.len())]),
                        _ => Op::Compute(1 + rng.gen_range(59)),
                    };
                }
            }
        }
        4 => {
            // Append a transaction to a random thread.
            let t = rng.gen_index(next.threads.len());
            let idx = next.threads[t].len() as u64;
            let tx = random_tx(rng, t as u64, idx);
            next.threads[t].push(tx);
        }
        _ => {
            // Append an op to a random transaction.
            let t = rng.gen_index(next.threads.len());
            if let Some(tx) = next.threads[t].last_mut() {
                tx.ops.push(match rng.gen_range(3) {
                    0 => Op::Read(ADDR_POOL[rng.gen_index(ADDR_POOL.len())]),
                    1 => Op::Write(ADDR_POOL[rng.gen_index(ADDR_POOL.len())]),
                    _ => Op::Compute(1 + rng.gen_range(59)),
                });
            }
        }
    }
    next
}

// ---------------------------------------------------------------------------
// Running and field-wise diffing
// ---------------------------------------------------------------------------

/// One field that differs between two engines' reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDiff {
    /// Flattened JSON path of the field (e.g. `outcome.per_proc[2].aborts`).
    pub path: String,
    /// The field's value in the reference (naive) engine's report.
    pub reference: String,
    /// The field's value in the diverging engine's report.
    pub diverging: String,
}

/// A detected engine divergence on one case: which engine disagreed with
/// the naive reference, and exactly which report fields differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Label of the diverging arm (`fast-forward`, `shard-parallel`,
    /// `windowed` or `parallel-windowed`).
    pub engine: String,
    /// The differing fields, in path order.
    pub fields: Vec<FieldDiff>,
}

/// The lane pool for the `parallel-windowed` arm, pinned to four workers so
/// the fuzzer exercises genuinely concurrent lanes even on a one-core host.
/// One pool is shared across every case (worker threads live for the life
/// of the process — the pool has no shutdown), and it is deliberately not
/// the process-global pool so the arm's parallelism does not depend on the
/// host's `--threads` budget.
fn pinned_lane_pool() -> std::sync::Arc<clockgate_htm::pool::WorkerPool> {
    static POOL: std::sync::OnceLock<std::sync::Arc<clockgate_htm::pool::WorkerPool>> =
        std::sync::OnceLock::new();
    std::sync::Arc::clone(
        POOL.get_or_init(|| std::sync::Arc::new(clockgate_htm::pool::WorkerPool::new(4))),
    )
}

fn run_engine(
    case: &CaseSpec,
    engine: EngineKind,
    inject_bug: bool,
    pinned_lanes: bool,
) -> Result<SimReport, SimError> {
    let topology = TopologyConfig::parse(&case.topology)
        .ok_or_else(|| SimError::BadConfig(format!("unknown topology `{}`", case.topology)))?;
    let mut builder = SimulationBuilder::new()
        .processors(case.procs())
        .l1_geometry(case.l1_kb, case.l1_assoc)
        .topology(topology)
        .workload(case.workload())
        .gating(case.policy)
        .cycle_limit(CASE_CYCLE_LIMIT)
        .engine(engine);
    if pinned_lanes {
        builder = builder.lane_pool(pinned_lane_pool());
    }
    // The planted bug lives in the batched (fast-forward) accounting path,
    // which the naive engine never takes; perturbing only the fast engine
    // keeps the reference and the shard/windowed engines honest witnesses.
    if inject_bug && engine == EngineKind::FastForward {
        builder = builder.debug_perturb_fast_accounting();
    }
    builder.run()
}

/// Run a case on all four engines — the windowed engine twice, once serial
/// and once with a four-worker lane pool pinned (`parallel-windowed`) — and
/// field-wise diff every report against the naive reference. An empty
/// vector means the exactness invariant held.
///
/// # Errors
/// Propagates simulation errors (bad configuration, cycle-limit overrun).
pub fn run_case(case: &CaseSpec, inject_bug: bool) -> Result<Vec<Divergence>, SimError> {
    let reference = to_json(&run_engine(case, EngineKind::Naive, inject_bug, false)?);
    let mut divergences = Vec::new();
    for (engine, pinned_lanes) in [
        (EngineKind::FastForward, false),
        (EngineKind::ShardParallel, false),
        (EngineKind::Windowed, false),
        (EngineKind::Windowed, true),
    ] {
        let candidate = to_json(&run_engine(case, engine, inject_bug, pinned_lanes)?);
        let fields = diff_reports(&reference, &candidate);
        if !fields.is_empty() {
            let label = if pinned_lanes {
                "parallel-windowed".to_string()
            } else {
                engine.label().to_string()
            };
            divergences.push(Divergence {
                engine: label,
                fields,
            });
        }
    }
    Ok(divergences)
}

/// Field-wise diff of two serialized reports: both JSON documents are
/// flattened to `path → atom` maps and compared key by key, so the result
/// names every drifting counter precisely (a field missing on one side
/// shows as `<absent>`).
#[must_use]
pub fn diff_reports(reference: &str, candidate: &str) -> Vec<FieldDiff> {
    let (a, b) = (flatten_json(reference), flatten_json(candidate));
    let mut paths: Vec<&String> = a.keys().chain(b.keys()).collect();
    paths.sort();
    paths.dedup();
    let absent = "<absent>".to_string();
    paths
        .into_iter()
        .filter_map(|path| {
            let left = a.get(path).unwrap_or(&absent);
            let right = b.get(path).unwrap_or(&absent);
            (left != right).then(|| FieldDiff {
                path: path.clone(),
                reference: left.clone(),
                diverging: right.clone(),
            })
        })
        .collect()
}

/// Flatten a JSON document to `dotted.path[index] → atom` pairs. Hand
/// rolled because the vendored serde compat crate serializes but does not
/// deserialize. Accepts exactly the JSON the report serializer emits; any
/// unparseable remainder is surfaced as a `<parse-error>` entry so a
/// corrupted report can never masquerade as "no differences".
fn flatten_json(text: &str) -> std::collections::BTreeMap<String, String> {
    let mut out = std::collections::BTreeMap::new();
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    if !flatten_value(bytes, &mut pos, String::new(), &mut out) {
        out.insert("<parse-error>".to_string(), format!("at byte {pos}"));
    }
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn flatten_value(
    bytes: &[u8],
    pos: &mut usize,
    path: String,
    out: &mut std::collections::BTreeMap<String, String>,
) -> bool {
    skip_ws(bytes, pos);
    let Some(&c) = bytes.get(*pos) else {
        return false;
    };
    match c {
        b'{' => {
            *pos += 1;
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                out.insert(path, "{}".to_string());
                return true;
            }
            loop {
                skip_ws(bytes, pos);
                let Some(key) = parse_string(bytes, pos) else {
                    return false;
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return false;
                }
                *pos += 1;
                let child = if path.is_empty() {
                    key
                } else {
                    format!("{path}.{key}")
                };
                if !flatten_value(bytes, pos, child, out) {
                    return false;
                }
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b'}') => {
                        *pos += 1;
                        return true;
                    }
                    _ => return false,
                }
            }
        }
        b'[' => {
            *pos += 1;
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                out.insert(path, "[]".to_string());
                return true;
            }
            let mut index = 0usize;
            loop {
                if !flatten_value(bytes, pos, format!("{path}[{index}]"), out) {
                    return false;
                }
                index += 1;
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b']') => {
                        *pos += 1;
                        return true;
                    }
                    _ => return false,
                }
            }
        }
        b'"' => {
            let start = *pos;
            if parse_string(bytes, pos).is_none() {
                return false;
            }
            out.insert(
                path,
                String::from_utf8_lossy(&bytes[start..*pos]).into_owned(),
            );
            true
        }
        _ => {
            // Number, true, false or null: read the atom up to a delimiter.
            let start = *pos;
            while *pos < bytes.len()
                && !matches!(bytes[*pos], b',' | b'}' | b']')
                && !bytes[*pos].is_ascii_whitespace()
            {
                *pos += 1;
            }
            if *pos == start {
                return false;
            }
            out.insert(
                path,
                String::from_utf8_lossy(&bytes[start..*pos]).into_owned(),
            );
            true
        }
    }
}

/// Parse a JSON string literal at `pos`, returning its unescaped-enough
/// content (escapes are kept verbatim — only the closing quote matters for
/// equality comparison) and advancing past the closing quote.
fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return None;
    }
    let start = *pos + 1;
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                let content = String::from_utf8_lossy(&bytes[start..i]).into_owned();
                *pos = i + 1;
                return Some(content);
            }
            _ => i += 1,
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Greedy shrinking
// ---------------------------------------------------------------------------

/// Greedily minimize a diverging case: repeatedly try removing a thread, a
/// transaction or a single operation, and zeroing pre-compute, keeping any
/// reduction under which `diverges` still returns `true`, until no single
/// reduction does (1-minimality at operation granularity). The vendored
/// proptest compat crate cannot shrink, so the harness owns this.
pub fn shrink_case<F: FnMut(&CaseSpec) -> bool>(case: &CaseSpec, mut diverges: F) -> CaseSpec {
    let mut best = case.clone();
    loop {
        let mut reduced = false;
        for candidate in reductions(&best) {
            if diverges(&candidate) {
                best = candidate;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return best;
        }
    }
}

/// Every case one single reduction step smaller than `case`, most
/// aggressive first (whole threads, then transactions, then ops, then
/// scalar simplifications).
fn reductions(case: &CaseSpec) -> Vec<CaseSpec> {
    let mut out = Vec::new();
    // Drop a whole thread (the machine needs at least two processors to
    // have an interconnect worth simulating).
    if case.threads.len() > 2 {
        for t in 0..case.threads.len() {
            let mut c = case.clone();
            c.threads.remove(t);
            out.push(c);
        }
    }
    // Drop one transaction.
    for t in 0..case.threads.len() {
        for x in 0..case.threads[t].len() {
            let mut c = case.clone();
            c.threads[t].remove(x);
            out.push(c);
        }
    }
    // Drop one op.
    for t in 0..case.threads.len() {
        for x in 0..case.threads[t].len() {
            for k in 0..case.threads[t][x].ops.len() {
                let mut c = case.clone();
                c.threads[t][x].ops.remove(k);
                out.push(c);
            }
        }
    }
    // Zero a pre-compute; shrink a compute op to 1.
    for t in 0..case.threads.len() {
        for x in 0..case.threads[t].len() {
            if case.threads[t][x].pre > 0 {
                let mut c = case.clone();
                c.threads[t][x].pre = 0;
                out.push(c);
            }
            for k in 0..case.threads[t][x].ops.len() {
                if let Op::Compute(n) = case.threads[t][x].ops[k] {
                    if n > 1 {
                        let mut c = case.clone();
                        c.threads[t][x].ops[k] = Op::Compute(1);
                        out.push(c);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A case guaranteed to trip the planted bug: a long Executing span
    /// (compute ≥ 4 cycles inside a transaction) that the fast engine
    /// settles in one batched flush.
    fn bug_trigger_case() -> CaseSpec {
        CaseSpec {
            topology: "bus".to_string(),
            policy: GatingMode::Ungated,
            l1_kb: 64,
            l1_assoc: 2,
            threads: vec![
                vec![CaseTx {
                    tx_id: 0x1000,
                    pre: 0,
                    ops: vec![Op::Read(0), Op::Compute(40), Op::Write(64)],
                }],
                vec![CaseTx {
                    tx_id: 0x11000,
                    pre: 3,
                    ops: vec![Op::Write(0), Op::Compute(12)],
                }],
            ],
        }
    }

    #[test]
    fn healthy_engines_never_diverge_on_random_cases() {
        let mut rng = DeterministicRng::new(7);
        for i in 0..6 {
            let case = random_case(&mut rng);
            let divergences = run_case(&case, false).expect("palette cases always run");
            assert!(
                divergences.is_empty(),
                "case {i} diverged without an injected bug:\n{}\n{divergences:?}",
                render_case(&case)
            );
        }
    }

    #[test]
    fn injected_bug_is_caught_named_and_shrunk() {
        let case = bug_trigger_case();
        let divergences = run_case(&case, true).expect("the trigger case runs");
        assert!(
            !divergences.is_empty(),
            "the planted fast-accounting bug must be detected"
        );
        let fast = divergences
            .iter()
            .find(|d| d.engine == "fast-forward")
            .expect("the planted bug lives in the fast engine");
        assert!(
            fast.fields.iter().any(|f| f.path.contains("attempt_cycles")
                || f.path.contains("energy")
                || f.path.contains("cycles")),
            "the diff must name the drifting accounting fields: {:?}",
            fast.fields
        );
        // Shrinking keeps the divergence and never grows the case.
        let shrunk = shrink_case(&case, |c| {
            run_case(c, true).map(|d| !d.is_empty()).unwrap_or(false)
        });
        assert!(shrunk.total_ops() <= case.total_ops());
        assert!(!run_case(&shrunk, true).unwrap().is_empty());
        // 1-minimality: no single further reduction still diverges.
        for candidate in super::reductions(&shrunk) {
            assert!(
                run_case(&candidate, true)
                    .map(|d| d.is_empty())
                    .unwrap_or(true),
                "shrunk case is not minimal"
            );
        }
    }

    #[test]
    fn every_corpus_scenario_seeds_a_runnable_engine_exact_case() {
        let mut rng = DeterministicRng::new(11);
        for name in htm_workloads::CORPUS_WORKLOADS {
            let case = CaseSpec {
                topology: "bus".to_string(),
                policy: GatingMode::ClockGate { w0: 8 },
                l1_kb: 64,
                l1_assoc: 2,
                threads: scenario_threads(&mut rng, name),
            };
            assert!(
                case.procs() >= 2,
                "{name}: scenario cases keep >= 2 threads"
            );
            parse_case(&render_case(&case)).expect("scenario cases stay well-formed");
            let divergences = run_case(&case, false).expect("scenario cases always run");
            assert!(
                divergences.is_empty(),
                "scenario `{name}` diverged without an injected bug:\n{}\n{divergences:?}",
                render_case(&case)
            );
        }
    }

    #[test]
    fn diff_reports_names_exact_paths() {
        let a = r#"{"outcome": {"cycles": 10, "per": [1, 2]}, "ok": true}"#;
        let b = r#"{"outcome": {"cycles": 11, "per": [1, 3]}, "ok": true}"#;
        let diffs = diff_reports(a, b);
        let paths: Vec<&str> = diffs.iter().map(|d| d.path.as_str()).collect();
        assert_eq!(paths, ["outcome.cycles", "outcome.per[1]"]);
        assert_eq!(diffs[0].reference, "10");
        assert_eq!(diffs[0].diverging, "11");
    }

    #[test]
    fn diff_reports_marks_missing_fields_as_absent() {
        let diffs = diff_reports(r#"{"a": 1, "b": 2}"#, r#"{"a": 1}"#);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].path, "b");
        assert_eq!(diffs[0].diverging, "<absent>");
    }

    #[test]
    fn corrupt_json_is_a_parse_error_not_a_clean_diff() {
        let diffs = diff_reports(r#"{"a": 1}"#, r#"{"a": 1"#);
        assert!(diffs.iter().any(|d| d.path == "<parse-error>"));
    }

    #[test]
    fn case_text_round_trips() {
        let mut rng = DeterministicRng::new(99);
        for _ in 0..50 {
            let case = random_case(&mut rng);
            let text = render_case(&case);
            let parsed = parse_case(&text).expect("rendered cases parse");
            assert_eq!(parsed, case, "case text round trip:\n{text}");
        }
    }

    #[test]
    fn every_palette_policy_slug_round_trips() {
        for policy in policy_palette() {
            let slug = policy.slug();
            assert_eq!(
                parse_policy(&slug),
                Some(policy),
                "slug `{slug}` must parse back"
            );
        }
    }

    #[test]
    fn parse_errors_name_the_line() {
        let err = parse_case("topology bus\npolicy cg-w8\nl1 64 2\nbogus x\n").unwrap_err();
        assert!(err.contains("line 4"), "{err}");
        let err = parse_case("tx id=0x1 pre=0 r0\n").unwrap_err();
        assert!(err.contains("before any `thread`"), "{err}");
        let err = parse_case("topology warp-drive\n").unwrap_err();
        assert!(err.contains("unknown topology"), "{err}");
    }

    #[test]
    fn mutants_stay_valid_and_runnable() {
        let mut rng = DeterministicRng::new(3);
        let mut case = random_case(&mut rng);
        for _ in 0..12 {
            case = mutate_case(&mut rng, &case);
            parse_case(&render_case(&case)).expect("mutants stay well-formed");
        }
        // One full run of the last mutant proves the palettes keep every
        // mutant buildable.
        run_case(&case, false).expect("mutants must run");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Proptest-generated raw traces flow through the same `.case`
        /// pipeline: build → render → parse is the identity.
        #[test]
        fn proptest_traces_round_trip_through_case_text(
            threads in prop::collection::vec(
                prop::collection::vec(
                    prop::collection::vec((0u8..3, 0usize..8, 1u64..60), 1..5),
                    1..4,
                ),
                2..5,
            ),
            policy_idx in 0usize..10,
            topo_idx in 0usize..4,
        ) {
            let case = CaseSpec {
                topology: TOPOLOGIES[topo_idx].to_string(),
                policy: policy_palette()[policy_idx],
                l1_kb: 64,
                l1_assoc: 2,
                threads: threads
                    .iter()
                    .enumerate()
                    .map(|(t, txs)| {
                        txs.iter()
                            .enumerate()
                            .map(|(x, ops)| CaseTx {
                                tx_id: ((t as u64) << 16) | (x as u64) | 0x1000,
                                pre: (x as u64 % 3) * 7,
                                ops: ops
                                    .iter()
                                    .map(|&(kind, addr, cycles)| match kind {
                                        0 => Op::Read(ADDR_POOL[addr]),
                                        1 => Op::Write(ADDR_POOL[addr]),
                                        _ => Op::Compute(cycles),
                                    })
                                    .collect(),
                            })
                            .collect()
                    })
                    .collect(),
            };
            let parsed = parse_case(&render_case(&case)).unwrap();
            prop_assert_eq!(parsed, case);
        }
    }
}
