//! Divergence-hunting fuzz harness (see `htm_bench::divergence`).
//!
//! ```bash
//! # Hunt: random + mutated cases across engines, topologies and policies.
//! cargo run --release -p htm-bench --bin divergence -- --budget 200 --seed 7
//!
//! # Replay a committed minimal case (regression check).
//! cargo run --release -p htm-bench --bin divergence -- \
//!     --case crates/bench/tests/cases/injected_fast_accounting.case
//!
//! # Self-test: plant the deliberate fast-engine accounting bug; the
//! # harness must find it, shrink it and exit 1.
//! cargo run --release -p htm-bench --bin divergence -- --inject-bug --budget 40
//! ```
//!
//! Exit codes: `0` — budget exhausted with every case engine-exact;
//! `1` — a divergence was found (shrunk case written under `--out`);
//! `2` — usage error.

use std::path::PathBuf;

use htm_bench::divergence::{
    mutate_case, parse_case, random_case, render_case, run_case, shrink_case, CaseSpec, Divergence,
};
use htm_sim::rng::DeterministicRng;

fn usage() -> ! {
    eprintln!(
        "usage: divergence [--budget N] [--seed S] [--out DIR] [--case FILE] [--inject-bug]\n\
         \n\
         Fuzz the exactness invariant: run random/mutated conflict traces and\n\
         machine configurations on all three stepping engines (naive reference,\n\
         fast-forward, shard-parallel) and field-wise diff the full reports.\n\
         A found divergence is auto-shrunk to a minimal `.case` file.\n\
         \n\
         options:\n\
         \x20 --budget N     number of fuzz cases to run (default 48)\n\
         \x20 --seed S       deterministic fuzz seed (default 1)\n\
         \x20 --out DIR      where to write shrunk `.case` files\n\
         \x20                (default divergence-out/)\n\
         \x20 --case FILE    replay one `.case` file instead of fuzzing;\n\
         \x20                exit 1 if it diverges, 0 if engine-exact\n\
         \x20 --inject-bug   plant the deliberate fast-engine accounting bug\n\
         \x20                (self-test: the harness must catch and shrink it)\n\
         \x20 -h, --help     this text"
    );
    std::process::exit(2);
}

fn parse_number(flag: &str, value: Option<String>) -> u64 {
    let Some(raw) = value else {
        eprintln!("{flag} needs a number");
        std::process::exit(2);
    };
    match raw.parse::<u64>() {
        Ok(n) => n,
        Err(err) => {
            eprintln!("{flag}: `{raw}` is not a number ({err})");
            std::process::exit(2);
        }
    }
}

fn print_divergences(divergences: &[Divergence]) {
    for d in divergences {
        eprintln!(
            "  {} vs naive reference: {} field(s) differ",
            d.engine,
            d.fields.len()
        );
        for f in d.fields.iter().take(12) {
            eprintln!("    {}: {} vs {}", f.path, f.reference, f.diverging);
        }
        if d.fields.len() > 12 {
            eprintln!("    ... and {} more", d.fields.len() - 12);
        }
    }
}

/// Does the case still diverge? Errors count as "no" so shrinking can never
/// wander into an unrunnable case.
fn still_diverges(case: &CaseSpec, inject_bug: bool) -> bool {
    run_case(case, inject_bug)
        .map(|d| !d.is_empty())
        .unwrap_or(false)
}

fn main() {
    let mut budget = 48u64;
    let mut seed = 1u64;
    let mut out_dir = PathBuf::from("divergence-out");
    let mut case_file: Option<PathBuf> = None;
    let mut inject_bug = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget" => budget = parse_number("--budget", args.next()),
            "--seed" => seed = parse_number("--seed", args.next()),
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out needs a directory path");
                    std::process::exit(2);
                }
            },
            "--case" => match args.next() {
                Some(file) => case_file = Some(PathBuf::from(file)),
                None => {
                    eprintln!("--case needs a `.case` file path");
                    std::process::exit(2);
                }
            },
            "--inject-bug" => inject_bug = true,
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown option `{other}`");
                usage();
            }
        }
    }

    // Replay mode: one case, pass/fail.
    if let Some(path) = case_file {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("cannot read {}: {err}", path.display());
                std::process::exit(2);
            }
        };
        let case = match parse_case(&text) {
            Ok(case) => case,
            Err(err) => {
                eprintln!("{}: {err}", path.display());
                std::process::exit(2);
            }
        };
        let divergences = match run_case(&case, inject_bug) {
            Ok(d) => d,
            Err(err) => {
                eprintln!("{}: simulation failed: {err}", path.display());
                std::process::exit(2);
            }
        };
        if divergences.is_empty() {
            eprintln!("{}: engine-exact on all three engines", path.display());
            return;
        }
        eprintln!("{}: DIVERGENCE", path.display());
        print_divergences(&divergences);
        std::process::exit(1);
    }

    // Fuzz mode: random cases seeded deterministically, interleaved with
    // mutants of the previous case (the corpus of one).
    let mut rng = DeterministicRng::new(seed);
    let mut last: Option<CaseSpec> = None;
    let mut skipped = 0u64;
    for i in 0..budget {
        let case = match &last {
            Some(prev) if rng.gen_bool(0.5) => mutate_case(&mut rng, prev),
            _ => random_case(&mut rng),
        };
        let divergences = match run_case(&case, inject_bug) {
            Ok(d) => d,
            Err(err) => {
                eprintln!("case {i}: skipped (simulation error: {err})");
                skipped += 1;
                continue;
            }
        };
        if divergences.is_empty() {
            last = Some(case);
            continue;
        }
        eprintln!("case {i}: DIVERGENCE found, shrinking...");
        print_divergences(&divergences);
        let shrunk = shrink_case(&case, |c| still_diverges(c, inject_bug));
        let shrunk_divs = run_case(&shrunk, inject_bug).expect("the shrunk case still runs");
        eprintln!(
            "shrunk from {} to {} ops across {} thread(s):",
            case.total_ops(),
            shrunk.total_ops(),
            shrunk.procs()
        );
        print_divergences(&shrunk_divs);
        if let Err(err) = std::fs::create_dir_all(&out_dir) {
            eprintln!("cannot create {}: {err}", out_dir.display());
            std::process::exit(2);
        }
        let path = out_dir.join(format!("divergence-seed{seed}-case{i}.case"));
        if let Err(err) = std::fs::write(&path, render_case(&shrunk)) {
            eprintln!("cannot write {}: {err}", path.display());
            std::process::exit(2);
        }
        eprintln!("wrote {}", path.display());
        std::process::exit(1);
    }
    eprintln!(
        "no divergence in {budget} case(s) (seed {seed}{}{})",
        if skipped > 0 { ", skipped " } else { "" },
        if skipped > 0 {
            skipped.to_string()
        } else {
            String::new()
        }
    );
}
