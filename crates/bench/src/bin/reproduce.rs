//! Regenerate every table and figure of the paper.
//!
//! ```bash
//! cargo run --release -p htm-bench --bin reproduce -- all
//! cargo run --release -p htm-bench --bin reproduce -- table1 table2 fig3
//! cargo run --release -p htm-bench --bin reproduce -- fig4 fig5 fig6 summary
//! cargo run --release -p htm-bench --bin reproduce -- fig7
//! cargo run --release -p htm-bench --bin reproduce -- --json fig5
//! ```

use clockgate_htm::experiments::{
    self, EvaluationMatrix, ExperimentConfig, Fig7Result,
};
use clockgate_htm::report;

fn usage() -> ! {
    eprintln!(
        "usage: reproduce [--json] [--quick] [all|table1|table2|fig3|fig4|fig5|fig6|fig7|summary]..."
    );
    std::process::exit(2);
}

fn main() {
    let mut json = false;
    let mut quick = false;
    let mut targets: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--quick" => quick = true,
            "-h" | "--help" => usage(),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    let all = targets.iter().any(|t| t == "all");
    let wants = |name: &str| all || targets.iter().any(|t| t == name);

    let cfg = if quick {
        ExperimentConfig { scale: htm_workloads::WorkloadScale::Small, ..ExperimentConfig::default() }
    } else {
        ExperimentConfig::default()
    };

    if wants("table1") {
        println!("{}", experiments::render_table1());
    }
    if wants("table2") {
        for &p in &cfg.processor_counts {
            println!("{}", experiments::render_table2(p));
        }
    }
    if wants("fig3") {
        let f = experiments::fig3();
        if json {
            println!("{}", report::to_json(&f));
        } else {
            println!("{}", experiments::render_fig3(&f));
        }
    }

    let needs_matrix = wants("fig4") || wants("fig5") || wants("fig6") || wants("summary");
    let matrix: Option<EvaluationMatrix> = if needs_matrix {
        eprintln!(
            "running the evaluation matrix ({} workloads x {:?} processors, with and without gating)...",
            cfg.workloads.len(),
            cfg.processor_counts
        );
        Some(experiments::run_matrix(&cfg).expect("evaluation matrix must complete"))
    } else {
        None
    };

    if let Some(matrix) = &matrix {
        if wants("fig4") {
            println!("{}", experiments::render_fig4(matrix));
        }
        if wants("fig5") {
            println!("{}", experiments::render_fig5(matrix));
        }
        if wants("fig6") {
            println!("{}", experiments::render_fig6(matrix));
        }
        if wants("summary") {
            println!("{}", experiments::render_summary(&experiments::summary(matrix)));
        }
        if json {
            println!("{}", report::to_json(matrix));
        }
    }

    if wants("fig7") {
        eprintln!("running the W0 sensitivity sweep...");
        let w0_values = [1, 2, 4, 8, 16, 32, 64];
        let f: Fig7Result = experiments::fig7(&cfg, &w0_values).expect("fig7 sweep must complete");
        if json {
            println!("{}", report::to_json(&f));
        } else {
            println!("{}", experiments::render_fig7(&f));
        }
    }
}
