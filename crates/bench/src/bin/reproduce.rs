//! Regenerate every table and figure of the paper.
//!
//! ```bash
//! cargo run --release -p htm-bench --bin reproduce -- all
//! cargo run --release -p htm-bench --bin reproduce -- table1 table2 fig3
//! cargo run --release -p htm-bench --bin reproduce -- fig4 fig5 fig6 summary
//! cargo run --release -p htm-bench --bin reproduce -- fig7
//! cargo run --release -p htm-bench --bin reproduce -- --json fig5
//! cargo run --release -p htm-bench --bin reproduce -- --smoke
//! ```
//!
//! `--quick` keeps the full evaluation matrix but at small workload scale;
//! `--smoke` is the CI gate: tiny workloads on a single processor count,
//! with every produced table/figure also written as a JSON artifact under
//! `--out` (default `reproduce-out/`).
//!
//! Engine and topology options:
//!
//! * `--engine fast|naive|shard|windowed|auto` selects the stepping engine
//!   (default `fast`, the event-driven fast-forward engine; `naive` is the
//!   one-step-per-cycle reference; `shard` is the shard-parallel engine
//!   that simulates conflict-isolated islands on parallel host threads;
//!   `windowed` is the time-windowed conservative PDES engine that
//!   parallelizes *within* a contended run by advancing per-bank groups one
//!   lookahead window at a time; `auto` picks per run — fast-forward on the
//!   bus, shard-parallel when the workload splits into >1 island, windowed
//!   for single-island sharded runs). All engines produce byte-identical
//!   table/figure artifacts — CI runs the smoke matrices with every engine
//!   and fails on any divergence.
//! * `--topology bus|sharded[:BANKS[:mesh|xbar]]` swaps the interconnect
//!   (default `bus`, the paper's machine; see `docs/SCALING.md`).
//! * `--threads N` caps the process-wide worker pool: matrix cells,
//!   shard-parallel islands and windowed per-group lanes all share that one
//!   budget, so nested parallelism never oversubscribes the host. Purely a
//!   wall-clock knob — output bytes are identical for every `N`.
//! * `--scale-smoke` is the large-machine CI gate: tiny workloads
//!   (including the island-friendly `clustered` one) on 64-, 512- and
//!   1024-processor machines — the last being the simulator's
//!   [`htm_sim::MAX_PROCS`] ceiling.
//! * `--timing` writes a `BENCH_reproduce.json` artifact with the wall-clock
//!   time of every matrix cell and the cells/second rate, so engine and
//!   parallelisation speedups are recorded next to the scientific output.
//! * `--trace FILE` drives the matrix targets from a recorded `htmtrace`
//!   file instead of the synthetic generators; `--record-trace FILE --from
//!   NAME[:PROCS[:SCALE[:SEED[:xTILES]]]]` produces such a file (see
//!   `docs/REPRODUCING.md`, "Bring your own trace").

use std::io::Write;
use std::path::{Path, PathBuf};

use clockgate_htm::experiments::{
    self, EvaluationMatrix, ExperimentConfig, Fig7Result, MatrixCheckpoint,
};
use clockgate_htm::report;
use clockgate_htm::sim::EngineChoice;
use htm_power::model::PowerModel;
use htm_sim::topology::TopologyConfig;

/// Print one line to stdout, exiting quietly if the reader went away
/// (`reproduce table1 | head` must not panic on the broken pipe).
fn outln(text: std::fmt::Arguments<'_>) {
    let mut stdout = std::io::stdout().lock();
    let ok = stdout
        .write_fmt(text)
        .and_then(|()| stdout.write_all(b"\n"))
        .is_ok();
    if !ok {
        std::process::exit(0);
    }
}

macro_rules! outln {
    ($($t:tt)*) => {
        outln(format_args!($($t)*))
    };
}

fn usage() -> ! {
    eprintln!(
        "usage: reproduce [options] [all|table1|table2|fig3|fig4|fig5|fig6|fig7|summary|breakdown]...\n\
         \n\
         Regenerate the paper's tables and figures (default target: all).\n\
         \n\
         options:\n\
         \x20 --json          print results as JSON instead of text tables\n\
         \x20 --quick         full matrix at small workload scale\n\
         \x20 --smoke         CI gate: tiny workloads, one processor count;\n\
         \x20                 also writes JSON artifacts (default dir reproduce-out/)\n\
         \x20 --scale-smoke   large-machine CI gate: tiny workloads (clustered,\n\
         \x20                 genome, intruder) on 64, 512 and 1024 processors;\n\
         \x20                 combine with --topology/--engine to exercise the\n\
         \x20                 sharded fabric\n\
         \x20 --max-procs N   drop matrix cells above N processors; CI uses it\n\
         \x20                 to keep the cycle-stepping naive reference arm of\n\
         \x20                 the scale smoke at 64p while the event-driven\n\
         \x20                 engines take the full 512-1024p corpus\n\
         \x20 --trace FILE    drive the matrix targets from a recorded htmtrace\n\
         \x20                 file instead of the synthetic generators: the\n\
         \x20                 trace becomes the only workload (on its recorded\n\
         \x20                 processor count) and is streamed through a\n\
         \x20                 fingerprint-verified bounded-memory reader; a\n\
         \x20                 corrupt, truncated or future-format file is a\n\
         \x20                 pre-flight error (exit 2); excludes --smoke,\n\
         \x20                 --scale-smoke and --quick\n\
         \x20 --record-trace FILE  record a workload as an htmtrace file and\n\
         \x20                 exit; the source is --from\n\
         \x20 --from SPEC     what --record-trace records, as\n\
         \x20                 NAME[:PROCS[:SCALE[:SEED[:xTILES]]]] with defaults\n\
         \x20                 4:test:42:x1 (e.g. `zipfian:8:full:7:x40`; xTILES\n\
         \x20                 repeats every thread's transaction sequence to\n\
         \x20                 build arbitrarily long traces)\n\
         \x20 --out DIR       write each produced table/figure as DIR/<name>.json;\n\
         \x20                 matrix targets additionally write the per-component\n\
         \x20                 energy_breakdown.json ledger artifact\n\
         \x20 --engine E      stepping engine: fast (default), naive, shard\n\
         \x20                 (shard-parallel islands on host threads),\n\
         \x20                 windowed (time-windowed conservative PDES:\n\
         \x20                 per-bank groups advance a provable lookahead\n\
         \x20                 window at a time, parallelizing even contended\n\
         \x20                 single-island runs), or auto (per run: fast on\n\
         \x20                 the bus or a single-bank fabric, shard when the\n\
         \x20                 workload splits into >1 island, windowed\n\
         \x20                 otherwise); artifacts are byte-identical in\n\
         \x20                 every case\n\
         \x20 --topology T    interconnect: bus (default) or\n\
         \x20                 sharded[:BANKS[:mesh|xbar]] (BANKS=0: one bank per\n\
         \x20                 directory); see docs/SCALING.md\n\
         \x20 --threads N     cap the process-wide worker pool at N threads\n\
         \x20                 (default: the host's available parallelism);\n\
         \x20                 matrix cells, shard-parallel islands and windowed\n\
         \x20                 lanes all draw from this one budget. Affects\n\
         \x20                 wall-clock only — output bytes are identical for\n\
         \x20                 every N\n\
         \x20 --timing        write BENCH_reproduce.json (wall-clock per matrix\n\
         \x20                 cell and cells/second)\n\
         \x20 --checkpoint-every N  checkpoint every simulation run every N\n\
         \x20                 simulated cycles; interrupted runs auto-resume\n\
         \x20                 from the newest valid checkpoint with identical\n\
         \x20                 output bytes (torn/corrupt files are skipped\n\
         \x20                 loudly, future-format files are a hard error)\n\
         \x20 --checkpoint-dir D    checkpoint directory (default:\n\
         \x20                 <out-dir>/checkpoints); requires --checkpoint-every\n\
         \x20 --list-policies list every registered contention policy and exit\n\
         \x20                 (every policy runs on either topology and engine)\n\
         \x20 -h, --help      this text\n\
         \n\
         For sensitivity sweeps beyond the paper's operating point, see the\n\
         `sweep` binary (`cargo run -p htm-bench --bin sweep -- --list`)."
    );
    std::process::exit(2);
}

/// Parse a `--flag CYCLES` value, exiting with an actionable message (not a
/// panic) on a missing or malformed number.
fn parse_cycles(flag: &str, value: Option<String>) -> u64 {
    let Some(raw) = value else {
        eprintln!("{flag} needs a cycle count, e.g. `{flag} 100000`");
        std::process::exit(2);
    };
    match raw.parse::<u64>() {
        Ok(n) => n,
        Err(err) => {
            eprintln!("{flag}: `{raw}` is not a cycle count ({err})");
            std::process::exit(2);
        }
    }
}

/// What `--record-trace` records: a registered workload generator plus the
/// tiling factor that repeats each thread's transaction sequence.
struct RecordSpec {
    name: String,
    procs: usize,
    scale: htm_workloads::WorkloadScale,
    seed: u64,
    tiles: usize,
}

/// Parse a `--from NAME[:PROCS[:SCALE[:SEED[:xTILES]]]]` spec, exiting with
/// an actionable message on any malformed segment.
fn parse_record_spec(spec: &str) -> RecordSpec {
    fn bad(spec: &str, why: &str) -> ! {
        eprintln!(
            "--from: `{spec}`: {why}\n\
             expected NAME[:PROCS[:SCALE[:SEED[:xTILES]]]], e.g. `intruder`, \
             `zipfian:8:full:7:x40` (SCALE is test, small or full)"
        );
        std::process::exit(2);
    }
    let mut parts = spec.split(':');
    let name = parts.next().unwrap_or_default().to_string();
    if name.is_empty() {
        bad(spec, "missing workload name");
    }
    let mut out = RecordSpec {
        name,
        procs: 4,
        scale: htm_workloads::WorkloadScale::Test,
        seed: 42,
        tiles: 1,
    };
    if let Some(procs) = parts.next() {
        match procs.parse::<usize>() {
            Ok(n) if n > 0 => out.procs = n,
            _ => bad(spec, "PROCS must be a positive integer"),
        }
    }
    if let Some(scale) = parts.next() {
        out.scale = match scale {
            "test" => htm_workloads::WorkloadScale::Test,
            "small" => htm_workloads::WorkloadScale::Small,
            "full" => htm_workloads::WorkloadScale::Full,
            _ => bad(spec, "SCALE must be test, small or full"),
        };
    }
    if let Some(seed) = parts.next() {
        match seed.parse::<u64>() {
            Ok(n) => out.seed = n,
            Err(_) => bad(spec, "SEED must be an unsigned integer"),
        }
    }
    if let Some(tiles) = parts.next() {
        match tiles.strip_prefix('x').map(str::parse::<usize>) {
            Some(Ok(n)) if n > 0 => out.tiles = n,
            _ => bad(
                spec,
                "TILES must be a positive integer prefixed with `x`, e.g. `x40`",
            ),
        }
    }
    if parts.next().is_some() {
        bad(spec, "too many `:`-separated segments");
    }
    out
}

/// Write one table/figure JSON artifact, creating the directory on demand.
fn write_artifact(dir: &Path, name: &str, json: &str) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create artifact dir {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", path.display());
}

fn main() {
    let mut json = false;
    let mut quick = false;
    let mut smoke = false;
    let mut scale_smoke = false;
    let mut timing = false;
    let mut engine = EngineChoice::default();
    let mut topology = TopologyConfig::Bus;
    let mut out_dir: Option<PathBuf> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut record_path: Option<PathBuf> = None;
    let mut record_from: Option<String> = None;
    let mut max_procs: Option<usize> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--quick" => quick = true,
            "--smoke" => smoke = true,
            "--scale-smoke" => scale_smoke = true,
            "--timing" => timing = true,
            "--list-policies" => {
                outln!("{}", clockgate_htm::gating::policy::render_policy_list());
                outln!(
                    "\nEvery policy runs on either interconnect topology \
                     (--topology bus|sharded[:BANKS[:mesh|xbar]], default bus) \
                     and any stepping engine (--engine fast|naive|shard|windowed|auto)."
                );
                return;
            }
            "--engine" => match args.next().as_deref().and_then(EngineChoice::parse) {
                Some(choice) => engine = choice,
                None => usage(),
            },
            "--topology" => match args.next().as_deref().and_then(TopologyConfig::parse) {
                Some(t) => topology = t,
                None => usage(),
            },
            "--threads" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => {
                    // Must land before anything touches the pool; arg parsing
                    // is the first thing main does, so this always wins.
                    htm_sim::pool::WorkerPool::configure_global(n);
                }
                _ => {
                    eprintln!("--threads needs a positive worker count, e.g. `--threads 4`");
                    std::process::exit(2);
                }
            },
            "--max-procs" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => max_procs = Some(n),
                _ => {
                    eprintln!(
                        "--max-procs needs a positive processor count, e.g. `--max-procs 64`"
                    );
                    std::process::exit(2);
                }
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--trace" => match args.next() {
                Some(path) => trace_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--trace needs a file path (a recorded htmtrace file)");
                    std::process::exit(2);
                }
            },
            "--record-trace" => match args.next() {
                Some(path) => record_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--record-trace needs an output file path");
                    std::process::exit(2);
                }
            },
            "--from" => match args.next() {
                Some(spec) => record_from = Some(spec),
                None => {
                    eprintln!("--from needs a workload spec: NAME[:PROCS[:SCALE[:SEED[:xTILES]]]]");
                    std::process::exit(2);
                }
            },
            "--checkpoint-every" => {
                let every = parse_cycles("--checkpoint-every", args.next());
                if every == 0 {
                    eprintln!("--checkpoint-every: the interval must be at least 1 cycle");
                    std::process::exit(2);
                }
                checkpoint_every = Some(every);
            }
            "--checkpoint-dir" => match args.next() {
                Some(dir) => checkpoint_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--checkpoint-dir needs a directory path");
                    std::process::exit(2);
                }
            },
            "-h" | "--help" => usage(),
            other => targets.push(other.to_string()),
        }
    }
    // Trace recording is its own mode: write the file and exit.
    if let Some(path) = record_path {
        let Some(spec) = record_from else {
            eprintln!("--record-trace needs --from NAME[:PROCS[:SCALE[:SEED[:xTILES]]]]");
            std::process::exit(2);
        };
        if trace_path.is_some() {
            eprintln!("--record-trace and --trace are mutually exclusive");
            std::process::exit(2);
        }
        let spec = parse_record_spec(&spec);
        let Some(workload) = htm_workloads::by_name(&spec.name, spec.procs, spec.scale, spec.seed)
        else {
            eprintln!(
                "--from: unknown workload `{}` (available: {})",
                spec.name,
                htm_workloads::workload_names().join(", ")
            );
            std::process::exit(2);
        };
        let workload = workload.tiled(spec.tiles);
        if let Err(e) = htm_workloads::trace::record_to_path(&path, &workload) {
            eprintln!("--record-trace {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!(
            "recorded `{}` ({} threads, {} transactions, {} memory references, fingerprint {:016x}) -> {}",
            workload.name,
            workload.num_threads(),
            workload.total_transactions(),
            workload.total_memory_refs(),
            workload.fingerprint(),
            path.display()
        );
        return;
    }
    if record_from.is_some() {
        eprintln!("--from does nothing without --record-trace FILE");
        std::process::exit(2);
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    const KNOWN: [&str; 10] = [
        "all",
        "table1",
        "table2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "summary",
        "breakdown",
    ];
    for t in &targets {
        if !KNOWN.contains(&t.as_str()) {
            eprintln!("unknown target `{t}`");
            usage();
        }
    }
    let all = targets.iter().any(|t| t == "all");
    let wants = |name: &str| all || targets.iter().any(|t| t == name);

    let mut cfg = if scale_smoke {
        ExperimentConfig {
            processor_counts: vec![64, 512, 1024],
            workloads: ["clustered", "genome", "intruder"]
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            scale: htm_workloads::WorkloadScale::Test,
            ..ExperimentConfig::default()
        }
    } else if smoke {
        ExperimentConfig {
            processor_counts: vec![4],
            scale: htm_workloads::WorkloadScale::Test,
            ..ExperimentConfig::default()
        }
    } else if quick {
        ExperimentConfig {
            scale: htm_workloads::WorkloadScale::Small,
            ..ExperimentConfig::default()
        }
    } else {
        ExperimentConfig::default()
    };
    if let Some(cap) = max_procs {
        cfg.processor_counts.retain(|&p| p <= cap);
        if cfg.processor_counts.is_empty() {
            eprintln!("--max-procs {cap} drops every matrix cell; raise the cap");
            std::process::exit(2);
        }
    }
    // A recorded trace replaces the synthetic workload axis entirely: the
    // matrix runs the trace (under its fingerprinted axis name) on exactly
    // the processor count it was recorded with.
    let trace: Option<clockgate_htm::sweep::TraceWorkload> = trace_path.map(|path| {
        if smoke || scale_smoke || quick {
            eprintln!(
                "--trace is mutually exclusive with --smoke/--scale-smoke/--quick: \
                 those presets fix their own workload lists"
            );
            std::process::exit(2);
        }
        let loaded = match htm_workloads::trace::read_from_path(&path) {
            Ok(loaded) => loaded,
            Err(e) => {
                eprintln!("--trace {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        let trace = clockgate_htm::sweep::TraceWorkload::from_loaded(&loaded);
        eprintln!(
            "trace {}: workload `{}`, {} threads, {} transactions, {} memory references, \
             fingerprint {:016x} -> axis `{}`",
            path.display(),
            loaded.workload.name,
            loaded.workload.num_threads(),
            loaded.workload.total_transactions(),
            loaded.workload.total_memory_refs(),
            loaded.fingerprint,
            trace.axis_name
        );
        cfg.workloads = vec![trace.axis_name.clone()];
        cfg.processor_counts = vec![loaded.workload.num_threads()];
        trace
    });
    if (smoke || scale_smoke) && out_dir.is_none() {
        out_dir = Some(PathBuf::from("reproduce-out"));
    }
    if checkpoint_dir.is_some() && checkpoint_every.is_none() {
        eprintln!(
            "--checkpoint-dir does nothing without --checkpoint-every N; \
             add an interval or drop the directory flag"
        );
        std::process::exit(2);
    }
    let ckpt: Option<MatrixCheckpoint> = checkpoint_every.map(|every| MatrixCheckpoint {
        dir: checkpoint_dir.unwrap_or_else(|| {
            out_dir
                .clone()
                .unwrap_or_else(|| PathBuf::from("reproduce-out"))
                .join("checkpoints")
        }),
        every,
    });

    if wants("table1") {
        outln!("{}", experiments::render_table1());
        if let Some(dir) = &out_dir {
            write_artifact(
                dir,
                "table1_power_model",
                &report::to_json(&PowerModel::alpha_21264_65nm()),
            );
        }
    }
    if wants("table2") {
        for &p in &cfg.processor_counts {
            outln!("{}", experiments::render_table2(p));
        }
    }
    if wants("fig3") {
        let f = experiments::fig3();
        if json {
            outln!("{}", report::to_json(&f));
        } else {
            outln!("{}", experiments::render_fig3(&f));
        }
        if let Some(dir) = &out_dir {
            write_artifact(dir, "fig3_cache_power", &report::to_json(&f));
        }
    }

    let needs_matrix =
        wants("fig4") || wants("fig5") || wants("fig6") || wants("summary") || wants("breakdown");
    if timing && !needs_matrix {
        eprintln!(
            "warning: --timing only measures the evaluation matrix \
             (fig4/fig5/fig6/summary); no BENCH_reproduce.json will be written"
        );
    }
    let matrix: Option<EvaluationMatrix> = if needs_matrix {
        eprintln!(
            "running the evaluation matrix ({} workloads x {:?} processors, with and without gating, {} engine, {})...",
            cfg.workloads.len(),
            cfg.processor_counts,
            engine.label(),
            topology.describe()
        );
        if let Some(spec) = &ckpt {
            eprintln!(
                "checkpointing every {} cycles into {}",
                spec.every,
                spec.dir.display()
            );
        }
        let (matrix, matrix_timing, breakdown) = match experiments::run_matrix_timed_ckpt_traced(
            &cfg,
            engine,
            topology,
            ckpt.as_ref(),
            trace.as_ref(),
        ) {
            Ok(results) => results,
            Err(err) => {
                eprintln!("the evaluation matrix failed: {err}");
                std::process::exit(1);
            }
        };
        eprintln!(
            "matrix completed: {} cells in {:.1} ms on {} threads ({:.1} cells/s)",
            matrix_timing.cells.len(),
            matrix_timing.total_wall_ms,
            matrix_timing.threads,
            matrix_timing.cells_per_sec
        );
        if timing {
            let dir = out_dir.clone().unwrap_or_else(|| PathBuf::from("."));
            write_artifact(&dir, "BENCH_reproduce", &report::to_json(&matrix_timing));
        }
        if wants("breakdown") {
            if json {
                outln!("{}", report::to_json(&breakdown));
            } else {
                outln!("{}", experiments::render_energy_breakdown(&breakdown));
            }
        }
        // The artifact is written whenever the matrix ran (like
        // evaluation_matrix.json), so `--smoke` always produces it for the
        // CI engine-divergence gate.
        if let Some(dir) = &out_dir {
            write_artifact(dir, "energy_breakdown", &report::to_json(&breakdown));
        }
        Some(matrix)
    } else {
        None
    };

    if let Some(matrix) = &matrix {
        if wants("fig4") {
            outln!("{}", experiments::render_fig4(matrix));
        }
        if wants("fig5") {
            outln!("{}", experiments::render_fig5(matrix));
        }
        if wants("fig6") {
            outln!("{}", experiments::render_fig6(matrix));
        }
        if wants("summary") {
            outln!(
                "{}",
                experiments::render_summary(&experiments::summary(matrix))
            );
        }
        if json {
            outln!("{}", report::to_json(matrix));
        }
        if let Some(dir) = &out_dir {
            write_artifact(dir, "evaluation_matrix", &report::to_json(matrix));
            write_artifact(
                dir,
                "summary",
                &report::to_json(&experiments::summary(matrix)),
            );
        }
    }

    if wants("fig7") {
        eprintln!("running the W0 sensitivity sweep...");
        let w0_values = [1, 2, 4, 8, 16, 32, 64];
        let f: Fig7Result = match experiments::fig7_ckpt_traced(
            &cfg,
            &w0_values,
            engine,
            topology,
            ckpt.as_ref(),
            trace.as_ref(),
        ) {
            Ok(result) => result,
            Err(err) => {
                eprintln!("the fig7 sweep failed: {err}");
                std::process::exit(1);
            }
        };
        if json {
            outln!("{}", report::to_json(&f));
        } else {
            outln!("{}", experiments::render_fig7(&f));
        }
        if let Some(dir) = &out_dir {
            write_artifact(dir, "fig7_w0_sensitivity", &report::to_json(&f));
        }
    }
}
