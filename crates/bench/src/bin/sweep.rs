//! Run a sensitivity sweep and report its Pareto frontiers.
//!
//! ```bash
//! cargo run --release -p htm-bench --bin sweep -- --grid smoke --out sweep-out
//! cargo run --release -p htm-bench --bin sweep -- --grid w0
//! cargo run --release -p htm-bench --bin sweep -- --grid scaling --resume
//! cargo run --release -p htm-bench --bin sweep -- --grid default --engine naive
//! ```
//!
//! The sweep streams one compact JSON record per cell to
//! `<out>/sweep.jsonl` in deterministic cell order; `--resume` parses an
//! existing file and skips the recorded cells, so an interrupted sweep can
//! be continued without redoing work. After the cells complete, the runner
//! writes `pareto.json` (energy-vs-time frontier per workload ×
//! processor-count slice), `sweep_summary.json` and `grid.json`, and this
//! binary prints the frontier and summary tables.

use std::io::Write;
use std::path::PathBuf;

use clockgate_htm::report;
use clockgate_htm::sim::EngineChoice;
use clockgate_htm::sweep::{self, SweepGrid, SweepObjective};
use htm_sim::topology::TopologyConfig;

/// Print one line to stdout, exiting quietly if the reader went away
/// (`sweep ... | head` must not panic on the broken pipe).
fn outln(text: std::fmt::Arguments<'_>) {
    let mut stdout = std::io::stdout().lock();
    let ok = stdout
        .write_fmt(text)
        .and_then(|()| stdout.write_all(b"\n"))
        .is_ok();
    if !ok {
        std::process::exit(0);
    }
}

macro_rules! outln {
    ($($t:tt)*) => {
        outln(format_args!($($t)*))
    };
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep --grid NAME | --trace FILE [--out DIR] [--engine fast|naive|shard|windowed|auto] [--topology T] [--threads N] [--objective O]\n\
         \x20            [--resume] [--checkpoint-every N] [--checkpoint-dir D] [--replay-to CYCLE --replay-key KEY]\n\
         \x20            [--list] [--list-policies]\n\
         \n\
         Expand a sensitivity grid, simulate every cell in parallel, stream\n\
         per-cell records (with their component-resolved energy ledgers) to\n\
         <out>/sweep.jsonl and report Pareto frontiers per (workload,\n\
         processor-count) slice under the chosen objective.\n\
         \n\
         options:\n\
         \x20 --grid NAME     grid to run: {names} (required unless --list/--trace)\n\
         \x20 --trace FILE    sweep a recorded htmtrace file instead of a named\n\
         \x20                 grid: the trace becomes the single workload-axis\n\
         \x20                 entry (named trace-<workload>-<fp8> after its\n\
         \x20                 fingerprint) and is swept over the trio of gating\n\
         \x20                 modes; a corrupt or truncated file is a pre-flight\n\
         \x20                 error, and --resume against records from any other\n\
         \x20                 trace or grid is rejected as foreign\n\
         \x20 --out DIR       artifact directory (default sweep-out/<grid>)\n\
         \x20 --engine E      stepping engine: fast (default), naive, shard\n\
         \x20                 (shard-parallel islands on host threads),\n\
         \x20                 windowed (time-windowed conservative PDES for\n\
         \x20                 contended sharded runs), or auto (picks per\n\
         \x20                 cell: fast on the bus, shard for >1 island,\n\
         \x20                 windowed otherwise); artifacts are\n\
         \x20                 byte-identical in every case\n\
         \x20 --topology T    interconnect: bus (default) or\n\
         \x20                 sharded[:BANKS[:mesh|xbar]] (BANKS=0: one bank per\n\
         \x20                 directory); sharded cell keys carry a topology\n\
         \x20                 segment, so bus and sharded sweeps never mix on\n\
         \x20                 resume; see docs/SCALING.md\n\
         \x20 --threads N     cap the process-wide worker pool at N threads\n\
         \x20                 (default: the host's available parallelism); sweep\n\
         \x20                 cells, shard-parallel islands and windowed lanes\n\
         \x20                 all draw from this one budget. Affects wall-clock\n\
         \x20                 only — artifacts are byte-identical for every N\n\
         \x20 --objective O   frontier objective: energy (default), edp or ed2p;\n\
         \x20                 only pareto.json depends on it, so a sweep can be\n\
         \x20                 resumed under any objective\n\
         \x20 --resume        skip cells already recorded in <out>/sweep.jsonl\n\
         \x20                 (a torn final line from a killed run is dropped)\n\
         \x20 --checkpoint-every N  durably checkpoint every in-flight cell's\n\
         \x20                 simulator state every N cycles; an interrupted\n\
         \x20                 sweep resumed with --resume restores each cell\n\
         \x20                 from its newest valid checkpoint instead of\n\
         \x20                 restarting it (artifacts stay byte-identical)\n\
         \x20 --checkpoint-dir D  where the .ckpt files live (default\n\
         \x20                 <out>/checkpoints)\n\
         \x20 --replay-to CYCLE   time travel: restore the nearest checkpoint\n\
         \x20                 of cell --replay-key at or before CYCLE,\n\
         \x20                 fast-forward to exactly CYCLE, print the state\n\
         \x20                 digest and exit (no sweep is run)\n\
         \x20 --replay-key KEY    the cell to replay (a key from sweep.jsonl)\n\
         \x20 --list          print the available grids and their cell counts\n\
         \x20 --list-policies list every registered contention policy and exit\n\
         \x20                 (every policy runs on either topology and engine)\n\
         \x20 -h, --help      this text",
        names = sweep::grid::GRID_NAMES.join("|")
    );
    std::process::exit(2);
}

/// Parse a required numeric flag value with an actionable message instead of
/// a panic.
fn parse_cycles(flag: &str, value: Option<String>) -> u64 {
    match value.as_deref().map(str::parse::<u64>) {
        Some(Ok(n)) => n,
        Some(Err(e)) => {
            eprintln!("{flag}: `{}` is not a cycle count: {e}", value.unwrap());
            std::process::exit(2);
        }
        None => usage(),
    }
}

fn list_grids() {
    outln!("available sweep grids:");
    for name in sweep::grid::GRID_NAMES {
        let grid = SweepGrid::by_name(name).expect("every listed grid exists");
        let cells = grid.expand();
        outln!(
            "  {name:<8} {:>4} cells  ({} workloads x {:?} procs, {} modes, {} geometries, {} leakage points, {} seeds)",
            cells.len(),
            grid.workloads.len(),
            grid.processor_counts,
            grid.gating.expand().len(),
            grid.cache_geometries.len(),
            grid.leakage_percents.len(),
            grid.seeds.len()
        );
    }
}

fn main() {
    let mut grid_name: Option<String> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut engine = EngineChoice::default();
    let mut topology = TopologyConfig::Bus;
    let mut objective = SweepObjective::Energy;
    let mut resume = false;
    let mut checkpoint_every: Option<u64> = None;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut replay_to: Option<u64> = None;
    let mut replay_key: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--grid" => match args.next() {
                Some(name) => grid_name = Some(name),
                None => usage(),
            },
            "--trace" => match args.next() {
                Some(path) => trace_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--trace needs a file path (a recorded htmtrace file)");
                    std::process::exit(2);
                }
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--engine" => match args.next().as_deref().and_then(EngineChoice::parse) {
                Some(choice) => engine = choice,
                None => usage(),
            },
            "--topology" => match args.next().as_deref().and_then(TopologyConfig::parse) {
                Some(t) => topology = t,
                None => usage(),
            },
            "--threads" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => {
                    // Must land before anything touches the pool; arg parsing
                    // is the first thing main does, so this always wins.
                    htm_sim::pool::WorkerPool::configure_global(n);
                }
                _ => {
                    eprintln!("--threads needs a positive worker count, e.g. `--threads 4`");
                    std::process::exit(2);
                }
            },
            "--objective" => match args.next().as_deref().and_then(SweepObjective::parse) {
                Some(o) => objective = o,
                None => usage(),
            },
            "--resume" => resume = true,
            "--checkpoint-every" => {
                let n = parse_cycles("--checkpoint-every", args.next());
                if n == 0 {
                    eprintln!("--checkpoint-every must be at least 1 cycle");
                    std::process::exit(2);
                }
                checkpoint_every = Some(n);
            }
            "--checkpoint-dir" => match args.next() {
                Some(dir) => checkpoint_dir = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--replay-to" => replay_to = Some(parse_cycles("--replay-to", args.next())),
            "--replay-key" => match args.next() {
                Some(key) => replay_key = Some(key),
                None => usage(),
            },
            "--list" => {
                list_grids();
                return;
            }
            "--list-policies" => {
                outln!("{}", clockgate_htm::gating::policy::render_policy_list());
                outln!(
                    "\nEvery policy runs on either interconnect topology \
                     (--topology bus|sharded[:BANKS[:mesh|xbar]], default bus) \
                     and any stepping engine (--engine fast|naive|shard)."
                );
                return;
            }
            _ => usage(),
        }
    }
    let (grid, trace) = match (grid_name, trace_path) {
        (Some(_), Some(_)) => {
            eprintln!("--grid and --trace are mutually exclusive; pass one workload source");
            std::process::exit(2);
        }
        (None, None) => usage(),
        (Some(grid_name), None) => {
            let Some(grid) = SweepGrid::by_name(&grid_name) else {
                eprintln!(
                    "unknown grid `{grid_name}` (available: {})",
                    sweep::grid::GRID_NAMES.join(", ")
                );
                std::process::exit(2);
            };
            (grid, None)
        }
        (None, Some(path)) => {
            let loaded = match htm_workloads::trace::read_from_path(&path) {
                Ok(loaded) => loaded,
                Err(e) => {
                    eprintln!("--trace {}: {e}", path.display());
                    std::process::exit(2);
                }
            };
            let trace = sweep::TraceWorkload::from_loaded(&loaded);
            eprintln!(
                "trace {}: workload `{}`, {} threads, {} transactions, fingerprint {:016x} -> axis `{}`",
                path.display(),
                loaded.workload.name,
                loaded.workload.num_threads(),
                loaded.workload.total_transactions(),
                loaded.fingerprint,
                trace.axis_name
            );
            let grid = SweepGrid::for_trace(&trace.axis_name, loaded.workload.num_threads());
            (grid, Some(trace))
        }
    };
    let out_dir = out_dir.unwrap_or_else(|| PathBuf::from("sweep-out").join(&grid.name));
    let ckpt_dir = checkpoint_dir
        .clone()
        .unwrap_or_else(|| out_dir.join("checkpoints"));

    let cells = grid.expand();

    // Time travel: replay one cell to a cycle and exit (no sweep runs).
    if let Some(target) = replay_to {
        let Some(key) = replay_key else {
            eprintln!(
                "--replay-to needs --replay-key KEY naming the cell to replay \
                 (a key from {})",
                out_dir.join(sweep::runner::JSONL_NAME).display()
            );
            std::process::exit(2);
        };
        let Some(cell) = cells
            .iter()
            .find(|c| sweep::runner::cell_key_on(c, topology) == key)
        else {
            eprintln!(
                "no cell of grid `{}` on the {} topology has key `{key}`; \
                 the first cells are: {}",
                grid.name,
                topology.describe(),
                cells
                    .iter()
                    .take(4)
                    .map(|c| sweep::runner::cell_key_on(c, topology))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        };
        match sweep::runner::replay_cell_traced_to(
            cell,
            engine,
            topology,
            &ckpt_dir,
            target,
            trace.as_ref(),
        ) {
            Ok((report, skipped)) => {
                for (path, why) in &skipped {
                    eprintln!("skipping corrupt checkpoint '{}': {why}", path.display());
                }
                match report.resumed_from {
                    Some(cycle) => eprintln!(
                        "restored checkpoint at cycle {cycle} from {}",
                        ckpt_dir.display()
                    ),
                    None => eprintln!(
                        "no usable checkpoint at or before cycle {target} in {}; \
                         replayed from cycle 0",
                        ckpt_dir.display()
                    ),
                }
                outln!(
                    "replayed `{}` to cycle {} ({})",
                    report.key,
                    report.reached,
                    if report.completed {
                        "run complete"
                    } else {
                        "in flight"
                    }
                );
                outln!("state digest {:#018x}", report.state_digest);
                return;
            }
            Err(e) => {
                eprintln!("replay failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if replay_key.is_some() {
        eprintln!("--replay-key without --replay-to CYCLE has no effect");
        std::process::exit(2);
    }
    if checkpoint_dir.is_some() && checkpoint_every.is_none() {
        eprintln!(
            "--checkpoint-dir without --checkpoint-every N does nothing; \
             pass an interval to enable checkpointing"
        );
        std::process::exit(2);
    }
    let ckpt = checkpoint_every.map(|every| sweep::SweepCheckpoint {
        dir: ckpt_dir.clone(),
        every,
    });
    eprintln!(
        "sweep `{}`: {} cells -> {} ({} engine, {}, {} objective{}{})",
        grid.name,
        cells.len(),
        out_dir.display(),
        engine.label(),
        topology.describe(),
        objective.label(),
        if resume { ", resume" } else { "" },
        match &ckpt {
            Some(spec) => format!(
                ", checkpoint every {} cycles -> {}",
                spec.every,
                spec.dir.display()
            ),
            None => String::new(),
        }
    );
    let started = std::time::Instant::now();
    let outcome = match sweep::run_sweep_ckpt_traced(
        &grid,
        engine,
        &out_dir,
        resume,
        objective,
        topology,
        ckpt.as_ref(),
        trace.as_ref(),
    ) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            eprintln!(
                "records streamed before the failure remain in {}; re-run with --resume \
                 to continue after fixing the cause",
                out_dir.join(sweep::runner::JSONL_NAME).display()
            );
            std::process::exit(1);
        }
    };
    eprintln!(
        "sweep `{}` done: {} executed, {} skipped, {:.1} ms wall",
        outcome.grid.name,
        outcome.executed,
        outcome.skipped,
        started.elapsed().as_secs_f64() * 1e3
    );
    for path in [
        &outcome.jsonl_path,
        &outcome.pareto_path,
        &outcome.summary_path,
        &outcome.breakdown_path,
    ] {
        eprintln!("wrote {}", path.display());
    }

    outln!("{}", report::render_pareto(&outcome.frontiers));
    outln!("{}", report::render_sweep_summary(&outcome.summaries));
}
