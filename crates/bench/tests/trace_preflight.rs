//! Pre-flight behaviour of `reproduce --trace` and `sweep --trace` on
//! damaged trace files: every corruption mode must be a dedicated usage
//! error (exit code 2) with an actionable message — never a panic, and
//! never a partial run.
//!
//! The suite records a known-good trace through the binary itself, then
//! derives each corrupt variant from those bytes, so the fixtures can never
//! drift from the writer.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn reproduce() -> Command {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
}

fn sweep() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sweep"))
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("clockgate-preflight-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Record the shared known-good trace into `dir` and return its text.
fn record_good(dir: &Path) -> String {
    let path = dir.join("good.trace");
    let out = reproduce()
        .args(["--record-trace"])
        .arg(&path)
        .args(["--from", "intruder:4:test:42"])
        .output()
        .expect("reproduce runs");
    assert!(
        out.status.success(),
        "recording failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read_to_string(&path).unwrap()
}

/// Run `reproduce --trace FILE summary` and return the full output.
fn replay(path: &Path) -> Output {
    reproduce()
        .arg("--trace")
        .arg(path)
        .arg("summary")
        .output()
        .expect("reproduce runs")
}

/// Assert the run was refused in pre-flight: exit code 2 and a message
/// containing `needle`.
fn assert_preflight_error(out: &Output, needle: &str, context: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{context}: expected exit 2, got {:?}; stderr:\n{stderr}",
        out.status.code()
    );
    assert!(
        stderr.contains(needle),
        "{context}: stderr must mention `{needle}`:\n{stderr}"
    );
}

#[test]
fn truncated_body_is_a_dedicated_preflight_error() {
    let dir = TempDir::new("truncated");
    let good = record_good(dir.path());
    // Cut the file mid-body: drop the last quarter of the lines.
    let lines: Vec<&str> = good.lines().collect();
    let torn: String = lines[..lines.len() * 3 / 4].join("\n");
    let path = dir.path().join("torn.trace");
    std::fs::write(&path, torn).unwrap();
    assert_preflight_error(&replay(&path), "truncated", "truncated body");
}

#[test]
fn bad_fingerprint_is_a_dedicated_preflight_error() {
    let dir = TempDir::new("fingerprint");
    let good = record_good(dir.path());
    // Flip one op address in the body; the declared fingerprint no longer
    // matches what the body hashes to.
    let edited = good.replacen("\nr ", "\nw ", 1);
    assert_ne!(edited, good, "the fixture must contain a read op");
    let path = dir.path().join("edited.trace");
    std::fs::write(&path, edited).unwrap();
    assert_preflight_error(
        &replay(&path),
        "fingerprint mismatch",
        "edited body vs declared fingerprint",
    );
}

#[test]
fn future_format_version_is_a_dedicated_preflight_error() {
    let dir = TempDir::new("version");
    let good = record_good(dir.path());
    let future = good.replacen("htmtrace v1", "htmtrace v99", 1);
    let path = dir.path().join("future.trace");
    std::fs::write(&path, future).unwrap();
    assert_preflight_error(&replay(&path), "version", "future format version");
}

#[test]
fn over_declared_proc_count_is_a_dedicated_preflight_error() {
    let dir = TempDir::new("procs");
    let good = record_good(dir.path());
    let over = good.replacen("procs 4", "procs 64", 1);
    let path = dir.path().join("over.trace");
    std::fs::write(&path, over).unwrap();
    assert_preflight_error(
        &replay(&path),
        "thread",
        "header declares more threads than the body holds",
    );
}

#[test]
fn missing_file_and_non_trace_file_are_preflight_errors() {
    let dir = TempDir::new("misc");
    let out = replay(&dir.path().join("does-not-exist.trace"));
    assert_eq!(out.status.code(), Some(2), "missing file must exit 2");
    let path = dir.path().join("not-a-trace.trace");
    std::fs::write(&path, "PK\x03\x04 this is not a trace\n").unwrap();
    assert_preflight_error(&replay(&path), "htmtrace", "non-trace file");
}

#[test]
fn sweep_rejects_the_same_corruptions() {
    let dir = TempDir::new("sweep");
    let good = record_good(dir.path());
    let edited = good.replacen("\nr ", "\nw ", 1);
    let path = dir.path().join("edited.trace");
    std::fs::write(&path, edited).unwrap();
    let out = sweep()
        .arg("--trace")
        .arg(&path)
        .arg("--out")
        .arg(dir.path().join("out"))
        .output()
        .expect("sweep runs");
    assert_preflight_error(&out, "fingerprint mismatch", "sweep with edited trace");
}

#[test]
fn both_binaries_document_the_trace_flags_in_help() {
    for (mut cmd, name, extra) in [
        (reproduce(), "reproduce", "--record-trace"),
        (sweep(), "sweep", "--grid"),
    ] {
        let out = cmd.arg("--help").output().expect("binary runs");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--trace"),
            "{name} --help must document --trace:\n{stderr}"
        );
        assert!(
            stderr.contains(extra),
            "{name} --help must document {extra}:\n{stderr}"
        );
    }
}

#[test]
fn a_good_trace_replays_and_sweeps_cleanly() {
    let dir = TempDir::new("good");
    record_good(dir.path());
    let path = dir.path().join("good.trace");
    let out = replay(&path);
    assert!(
        out.status.success(),
        "replay of a good trace must succeed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("Headline averages"),
        "summary output expected:\n{stdout}"
    );
}
