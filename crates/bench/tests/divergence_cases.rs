//! Regression replay of every committed `.case` file, plus the end-to-end
//! self-validation of the divergence harness: the deliberately planted
//! fast-engine accounting bug must be caught, named field-precisely, and
//! the committed minimal case must really be minimal.

use std::path::PathBuf;

use htm_bench::divergence::{parse_case, render_case, run_case, shrink_case, CaseSpec};

fn cases_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/cases")
}

fn load_case(name: &str) -> CaseSpec {
    let path = cases_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    parse_case(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn every_committed_case_replays_engine_exact() {
    let mut seen = 0;
    for entry in std::fs::read_dir(cases_dir()).expect("tests/cases exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("case") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let case = parse_case(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // The textual form is canonical: re-rendering the parsed case and
        // parsing again is the identity (pins the format itself).
        assert_eq!(
            parse_case(&render_case(&case)).unwrap(),
            case,
            "{}: case text does not round trip",
            path.display()
        );
        let divergences = run_case(&case, false)
            .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", path.display()));
        assert!(
            divergences.is_empty(),
            "{}: healthy engines diverged: {divergences:?}",
            path.display()
        );
    }
    assert!(
        seen >= 2,
        "expected at least two committed cases, found {seen}"
    );
}

#[test]
fn committed_minimal_case_catches_the_injected_bug() {
    let case = load_case("injected_fast_accounting.case");
    let divergences = run_case(&case, true).expect("the committed case runs");
    let fast: Vec<_> = divergences
        .iter()
        .filter(|d| d.engine == "fast-forward")
        .collect();
    assert_eq!(
        fast.len(),
        1,
        "the planted bug perturbs exactly the fast engine: {divergences:?}"
    );
    assert!(
        fast[0]
            .fields
            .iter()
            .any(|f| f.path.contains("useful_cycles")),
        "the field-wise diff must name the under-counted counter: {:?}",
        fast[0].fields
    );
}

#[test]
fn committed_minimal_case_is_actually_minimal() {
    let case = load_case("injected_fast_accounting.case");
    let shrunk = shrink_case(&case, |c| {
        run_case(c, true).map(|d| !d.is_empty()).unwrap_or(false)
    });
    assert_eq!(
        shrunk.total_ops(),
        case.total_ops(),
        "the committed case can be shrunk further — re-commit the smaller one:\n{}",
        render_case(&shrunk)
    );
    assert_eq!(case.total_ops(), 1, "one compute op is the whole trigger");
}
