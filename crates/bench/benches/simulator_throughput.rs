//! Simulator throughput — simulated cycles per wall-clock second.
//!
//! Not a figure from the paper; this measures the substrate itself (the
//! replacement for M5) so that regressions in the cycle loop, the cache
//! model or the directory bookkeeping are caught. Both stepping engines are
//! measured: `fast_forward` is the event-driven engine that leaps over
//! quiescent windows (the default everywhere), `naive` is the
//! one-step-per-cycle reference engine it is differentially tested against —
//! the ratio between the two is the engine speedup recorded in CHANGES.md.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use htm_sim::config::SimConfig;
use htm_tcc::hooks::NoGating;
use htm_tcc::system::{EngineKind, TccSystem};
use htm_workloads::{by_name, WorkloadScale};

fn simulated_cycles(procs: usize, engine: EngineKind) -> u64 {
    let w = by_name("intruder", procs, WorkloadScale::Test, 7).unwrap();
    TccSystem::new(SimConfig::table2(procs), w, NoGating)
        .unwrap()
        .run_bounded_parts(50_000_000, engine)
        .unwrap()
        .0
        .total_cycles
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for engine in [EngineKind::FastForward, EngineKind::Naive] {
        for procs in [4usize, 16] {
            let cycles = simulated_cycles(procs, engine);
            group.throughput(Throughput::Elements(cycles));
            group.bench_function(
                format!("intruder_test_scale_{procs}p_{}", engine.label()),
                |b| {
                    b.iter(|| black_box(simulated_cycles(procs, engine)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
