//! Simulator throughput — simulated cycles per wall-clock second.
//!
//! Not a figure from the paper; this measures the substrate itself (the
//! replacement for M5) so that regressions in the cycle loop, the cache
//! model or the directory bookkeeping are caught.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use htm_sim::config::SimConfig;
use htm_tcc::hooks::NoGating;
use htm_tcc::system::TccSystem;
use htm_workloads::{by_name, WorkloadScale};

fn simulated_cycles(procs: usize) -> u64 {
    let w = by_name("intruder", procs, WorkloadScale::Test, 7).unwrap();
    TccSystem::new(SimConfig::table2(procs), w, NoGating)
        .unwrap()
        .run_bounded(50_000_000)
        .unwrap()
        .total_cycles
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for procs in [4usize, 16] {
        let cycles = simulated_cycles(procs);
        group.throughput(Throughput::Elements(cycles));
        group.bench_function(format!("intruder_test_scale_{procs}p"), |b| {
            b.iter(|| black_box(simulated_cycles(procs)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
