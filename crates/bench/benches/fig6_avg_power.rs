//! Fig. 6 — average power dissipation with and without clock gating.
//!
//! Average power is energy divided by execution time (Eq. 7 divides the
//! energy reduction by the speed-up); the benchmark measures the cost of the
//! comparison pipeline on a pre-computed pair of runs and of one full pair.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clockgate_htm::sim::{compare_runs, GatingMode, SimReport, SimulationBuilder};
use htm_workloads::WorkloadScale;

fn run(workload: &str, mode: GatingMode) -> SimReport {
    SimulationBuilder::new()
        .processors(8)
        .workload_by_name(workload, WorkloadScale::Small, 42)
        .expect("workload")
        .gating(mode)
        .run()
        .expect("simulation")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_avg_power");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    let ungated = run("yada", GatingMode::Ungated);
    let gated = run("yada", GatingMode::ClockGate { w0: 8 });
    let cmp = compare_runs(&ungated, &gated);
    println!(
        "fig6[yada x 8p]: avg power without={:.3} with={:.3} reduction={:.3}x",
        cmp.ungated_energy / (cmp.ungated_cycles as f64 * 8.0),
        cmp.gated_energy / (cmp.gated_cycles as f64 * 8.0),
        cmp.average_power_reduction
    );

    group.bench_function("comparison_on_precomputed_pair", |b| {
        b.iter(|| black_box(compare_runs(&ungated, &gated).average_power_reduction));
    });
    group.bench_function("full_pair_yada_8p", |b| {
        b.iter(|| {
            let u = run("yada", GatingMode::Ungated);
            let g = run("yada", GatingMode::ClockGate { w0: 8 });
            black_box(compare_runs(&u, &g).average_power_reduction)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
