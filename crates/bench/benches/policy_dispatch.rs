//! Hook-dispatch cost of the pluggable-policy framework.
//!
//! The policy refactor moved the simulation front end from a per-mode
//! monomorphized `TccSystem<ClockGateController>` to a single
//! `TccSystem<Box<dyn PolicyHook>>` resolved through the registry. Every
//! hook callback on the 16-processor hot path now goes through a vtable, so
//! this bench runs the *same* gated simulation both ways and compares —
//! guarding the fast-forward wins of the event-driven engine against a
//! dispatch regression. The ungated pair bounds the overhead on the
//! cheapest hook (whose callbacks do nearly nothing, making relative
//! dispatch cost maximal).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clockgate_htm::gating::contention::GatingAwarePolicy;
use clockgate_htm::gating::controller::{ClockGateController, ControllerConfig};
use clockgate_htm::gating::policy::PolicySpec;
use htm_sim::config::SimConfig;
use htm_tcc::hooks::NoGating;
use htm_tcc::system::{EngineKind, TccSystem};
use htm_workloads::{by_name, WorkloadScale};

const PROCS: usize = 16;

fn workload() -> htm_tcc::txn::WorkloadTrace {
    by_name("intruder", PROCS, WorkloadScale::Test, 7).unwrap()
}

/// The pre-refactor shape: the concrete hook type monomorphizes the system.
fn run_monomorphized(engine: EngineKind) -> u64 {
    let cfg = SimConfig::table2(PROCS);
    let hook = ClockGateController::new(
        cfg.num_dirs,
        cfg.num_procs,
        Box::new(GatingAwarePolicy::new(8)),
        ControllerConfig::from_sim_config(&cfg),
    );
    TccSystem::new(cfg, workload(), hook)
        .unwrap()
        .run_bounded_parts(50_000_000, engine)
        .unwrap()
        .0
        .total_cycles
}

/// The post-refactor shape: the registry hands back a boxed trait object.
fn run_boxed(engine: EngineKind) -> u64 {
    let cfg = SimConfig::table2(PROCS);
    let hook = PolicySpec::ClockGate { w0: 8 }.build(&cfg);
    TccSystem::new(cfg, workload(), hook)
        .unwrap()
        .run_bounded_parts(50_000_000, engine)
        .unwrap()
        .0
        .total_cycles
}

fn run_monomorphized_ungated(engine: EngineKind) -> u64 {
    let cfg = SimConfig::table2(PROCS);
    TccSystem::new(cfg, workload(), NoGating)
        .unwrap()
        .run_bounded_parts(50_000_000, engine)
        .unwrap()
        .0
        .total_cycles
}

fn run_boxed_ungated(engine: EngineKind) -> u64 {
    let cfg = SimConfig::table2(PROCS);
    let hook = PolicySpec::Ungated.build(&cfg);
    TccSystem::new(cfg, workload(), hook)
        .unwrap()
        .run_bounded_parts(50_000_000, engine)
        .unwrap()
        .0
        .total_cycles
}

fn bench(c: &mut Criterion) {
    // Both dispatch shapes must simulate the exact same machine.
    assert_eq!(
        run_monomorphized(EngineKind::FastForward),
        run_boxed(EngineKind::FastForward),
        "dispatch must not change the simulated outcome"
    );
    let mut group = c.benchmark_group("policy_dispatch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for engine in [EngineKind::FastForward, EngineKind::Naive] {
        group.bench_function(format!("clock_gate_16p_mono_{}", engine.label()), |b| {
            b.iter(|| black_box(run_monomorphized(engine)));
        });
        group.bench_function(format!("clock_gate_16p_boxed_{}", engine.label()), |b| {
            b.iter(|| black_box(run_boxed(engine)));
        });
        group.bench_function(format!("ungated_16p_mono_{}", engine.label()), |b| {
            b.iter(|| black_box(run_monomorphized_ungated(engine)));
        });
        group.bench_function(format!("ungated_16p_boxed_{}", engine.label()), |b| {
            b.iter(|| black_box(run_boxed_ungated(engine)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
