//! Fig. 7 — speed-up as a function of `W0` and the number of processors.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clockgate_htm::sim::{GatingMode, SimulationBuilder};
use htm_workloads::WorkloadScale;

fn gated_cycles(workload: &str, procs: usize, w0: u64) -> u64 {
    SimulationBuilder::new()
        .processors(procs)
        .workload_by_name(workload, WorkloadScale::Small, 42)
        .expect("workload")
        .gating(GatingMode::ClockGate { w0 })
        .run()
        .expect("simulation")
        .outcome
        .total_cycles
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_w0_sensitivity");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for w0 in [2u64, 8, 32] {
        let n = gated_cycles("intruder", 8, w0);
        println!("fig7[intruder x 8p, W0={w0}]: gated execution time = {n} cycles");
        group.bench_function(format!("intruder_8p_w0_{w0}"), |b| {
            b.iter(|| black_box(gated_cycles("intruder", 8, w0)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
