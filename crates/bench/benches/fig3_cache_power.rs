//! Fig. 3 — normalized power of the TCC data cache vs. RW-bit resolution.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clockgate_htm::experiments;
use htm_power::cache_power::CachePowerModel;

fn bench(c: &mut Criterion) {
    // The anchor points the paper quotes must hold before we benchmark.
    let m = CachePowerModel::new_kb(64);
    assert!((m.normalized_rw_power(2) - 105.0).abs() < 1.0);
    assert!((1.3..=1.7).contains(&m.tcc_breakdown(2).factor()));

    c.bench_function("fig3/all_cache_sizes", |b| {
        b.iter(|| black_box(experiments::fig3()));
    });
    c.bench_function("fig3/single_series_64kb", |b| {
        b.iter(|| black_box(CachePowerModel::new_kb(64).fig3_series()));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
