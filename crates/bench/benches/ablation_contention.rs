//! Ablation — the clock-gate-on-abort design choices.
//!
//! Compares the paper's full proposal (Eq. 8 staircase + Fig. 2(e) renewal
//! check) against the ablations DESIGN.md calls out: plain TCC, conventional
//! exponential polite back-off (no gating), a fixed gating window, the
//! staircase without the renewal check, and a linear (non-staircase)
//! back-off.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clockgate_htm::sim::{GatingMode, SimulationBuilder};
use htm_workloads::WorkloadScale;

fn run(mode: GatingMode) -> (u64, f64) {
    let r = SimulationBuilder::new()
        .processors(8)
        .workload_by_name("intruder", WorkloadScale::Small, 42)
        .expect("workload")
        .gating(mode)
        .run()
        .expect("simulation");
    (r.outcome.total_cycles, r.energy.total_energy)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_contention");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    let modes: [(&str, GatingMode); 6] = [
        ("baseline_tcc", GatingMode::Ungated),
        (
            "exp_backoff",
            GatingMode::ExponentialBackoff { base: 32, cap: 8 },
        ),
        ("clock_gate_eq8", GatingMode::ClockGate { w0: 8 }),
        (
            "clock_gate_fixed",
            GatingMode::ClockGateFixedWindow { window: 64 },
        ),
        (
            "clock_gate_no_renew",
            GatingMode::ClockGateNoRenew { w0: 8 },
        ),
        ("clock_gate_linear", GatingMode::ClockGateLinear { w0: 8 }),
    ];
    for (name, mode) in modes {
        let (cycles, energy) = run(mode);
        println!("ablation[intruder x 8p, {name}]: {cycles} cycles, energy {energy:.0}");
        group.bench_function(name, |b| b.iter(|| black_box(run(mode))));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
