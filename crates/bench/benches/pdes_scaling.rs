//! PDES engine scaling — serial vs island-parallel vs time-windowed.
//!
//! Not a figure from the paper; this tracks the simulation substrate's
//! parallel stepping engines against the serial fast-forward baseline on
//! the two workload regimes that distinguish them:
//!
//! * `clustered` decomposes into conflict-isolated islands — the
//!   shard-parallel engine's home turf.
//! * `hotspot` is one contended conflict component — the island engine
//!   falls back to serial and only the windowed conservative PDES engine
//!   can split work (by home bank, one lookahead window at a time).
//!
//! All three engines produce byte-identical reports (pinned by the
//! `engine_differential` suite); this bench records what that exactness
//! costs or buys in wall-clock. On a single-core host the parallel engines
//! can only lose (coordination overhead with no cores to spend it on) — the
//! committed `BENCH_pdes.json` numbers are exactly that honest baseline,
//! regenerated via `tools/bench_pdes.sh`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clockgate_htm::sim::{EngineKind, GatingMode, SimulationBuilder};
use htm_sim::topology::TopologyConfig;
use htm_workloads::WorkloadScale;

fn total_cycles(workload: &str, procs: usize, engine: EngineKind) -> u64 {
    SimulationBuilder::new()
        .processors(procs)
        .topology(TopologyConfig::sharded_default())
        .workload_by_name(workload, WorkloadScale::Test, 11)
        .unwrap()
        .gating(GatingMode::ClockGate { w0: 8 })
        .cycle_limit(50_000_000)
        .engine(engine)
        .run()
        .unwrap()
        .outcome
        .total_cycles
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("pdes_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for workload in ["hotspot", "clustered"] {
        for procs in [64usize, 256] {
            for engine in [
                EngineKind::FastForward,
                EngineKind::ShardParallel,
                EngineKind::Windowed,
            ] {
                group.bench_function(format!("{workload}_{procs}p_{}", engine.label()), |b| {
                    b.iter(|| black_box(total_cycles(workload, procs, engine)));
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
