//! PDES engine scaling — serial vs island-parallel vs time-windowed.
//!
//! Not a figure from the paper; this tracks the simulation substrate's
//! parallel stepping engines against the serial fast-forward baseline on
//! the two workload regimes that distinguish them:
//!
//! * `clustered` decomposes into conflict-isolated islands — the
//!   shard-parallel engine's home turf.
//! * `hotspot` is one contended conflict component — the island engine
//!   falls back to serial and only the windowed conservative PDES engine
//!   can split work (by home bank, one lookahead window at a time).
//!
//! All engines produce byte-identical reports (pinned by the
//! `engine_differential` suite); this bench records what that exactness
//! costs or buys in wall-clock. Four arms per cell: `fast-forward`,
//! `shard-parallel`, `windowed` (lane pool pinned to one worker — the
//! sequential in-place path) and `windowed-parallel` (lane pool pinned to
//! four workers, fanning per-window groups out). The pins make each
//! column mean the same thing on every host. On a single-core host the
//! parallel arms can only lose (coordination overhead with no cores to
//! spend it on) — the committed `BENCH_pdes.json` numbers are exactly that
//! honest baseline, regenerated via `tools/bench_pdes.sh`.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clockgate_htm::pool::WorkerPool;
use clockgate_htm::sim::{EngineKind, GatingMode, SimulationBuilder};
use htm_sim::topology::TopologyConfig;
use htm_workloads::WorkloadScale;

/// Pinned lane pools, shared across iterations (pool worker threads live
/// for the life of the process — creating one per iteration would both leak
/// threads and charge pool spin-up to the measurement).
fn lane_pool(workers: usize) -> Arc<WorkerPool> {
    static SERIAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
    static PARALLEL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
    let cell = if workers > 1 { &PARALLEL } else { &SERIAL };
    Arc::clone(cell.get_or_init(|| Arc::new(WorkerPool::new(workers))))
}

fn total_cycles(
    workload: &str,
    procs: usize,
    engine: EngineKind,
    lane_workers: Option<usize>,
) -> u64 {
    let mut builder = SimulationBuilder::new()
        .processors(procs)
        .topology(TopologyConfig::sharded_default())
        .workload_by_name(workload, WorkloadScale::Test, 11)
        .unwrap()
        .gating(GatingMode::ClockGate { w0: 8 })
        .cycle_limit(50_000_000)
        .engine(engine);
    if let Some(workers) = lane_workers {
        builder = builder.lane_pool(lane_pool(workers));
    }
    builder.run().unwrap().outcome.total_cycles
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("pdes_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for workload in ["hotspot", "clustered"] {
        for procs in [64usize, 256] {
            for (label, engine, lane_workers) in [
                ("fast-forward", EngineKind::FastForward, None),
                ("shard-parallel", EngineKind::ShardParallel, None),
                ("windowed", EngineKind::Windowed, Some(1)),
                ("windowed-parallel", EngineKind::Windowed, Some(4)),
            ] {
                group.bench_function(format!("{workload}_{procs}p_{label}"), |b| {
                    b.iter(|| black_box(total_cycles(workload, procs, engine, lane_workers)));
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
