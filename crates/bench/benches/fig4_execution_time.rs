//! Fig. 4 — total parallel execution time with and without clock gating.
//!
//! Each benchmark id runs one full simulation (reduced `Small` workload
//! scale, 8 processors) and reports the wall-clock cost of regenerating one
//! bar of the figure. The measured quantity of interest — the simulated
//! cycle counts — is printed once per configuration so the bench doubles as
//! a quick reproduction of the figure's shape.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clockgate_htm::sim::{GatingMode, SimulationBuilder};
use htm_workloads::WorkloadScale;

const PROCS: usize = 8;
const SEED: u64 = 42;

fn run(workload: &str, mode: GatingMode) -> u64 {
    SimulationBuilder::new()
        .processors(PROCS)
        .workload_by_name(workload, WorkloadScale::Small, SEED)
        .expect("workload")
        .gating(mode)
        .run()
        .expect("simulation")
        .outcome
        .total_cycles
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_execution_time");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for workload in ["genome", "yada", "intruder"] {
        let n1 = run(workload, GatingMode::Ungated);
        let n2 = run(workload, GatingMode::ClockGate { w0: 8 });
        println!(
            "fig4[{workload} x {PROCS}p]: ungated={n1} cycles, gated={n2} cycles, speedup={:.3}x",
            n1 as f64 / n2 as f64
        );
        group.bench_function(format!("{workload}/ungated"), |b| {
            b.iter(|| black_box(run(workload, GatingMode::Ungated)));
        });
        group.bench_function(format!("{workload}/clock_gated"), |b| {
            b.iter(|| black_box(run(workload, GatingMode::ClockGate { w0: 8 })));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
