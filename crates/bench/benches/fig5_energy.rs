//! Fig. 5 — energy consumption with and without clock gating.
//!
//! Separates the two costs: running the pair of simulations (dominant) and
//! evaluating the Section IV energy equations on the resulting outcomes
//! (cheap, benchmarked on pre-computed outcomes).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clockgate_htm::sim::{compare_runs, GatingMode, SimReport, SimulationBuilder};
use htm_power::energy;
use htm_power::model::PowerModel;
use htm_workloads::WorkloadScale;

fn run(workload: &str, procs: usize, mode: GatingMode) -> SimReport {
    SimulationBuilder::new()
        .processors(procs)
        .workload_by_name(workload, WorkloadScale::Small, 42)
        .expect("workload")
        .gating(mode)
        .run()
        .expect("simulation")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_energy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    let ungated = run("intruder", 8, GatingMode::Ungated);
    let gated = run("intruder", 8, GatingMode::ClockGate { w0: 8 });
    let cmp = compare_runs(&ungated, &gated);
    println!(
        "fig5[intruder x 8p]: Eug={:.0} Eg={:.0} reduction={:.3}x ({:+.1}%)",
        cmp.ungated_energy,
        cmp.gated_energy,
        cmp.energy_reduction,
        cmp.energy_savings_percent()
    );

    let model = PowerModel::alpha_21264_65nm();
    group.bench_function("energy_equations_on_precomputed_outcome", |b| {
        b.iter(|| black_box(energy::analyze(&gated.outcome, &model)));
    });
    group.bench_function("interval_formulation_eq1", |b| {
        b.iter(|| black_box(energy::interval_energy(&gated.outcome, &model)));
    });
    group.bench_function("full_pair_intruder_8p", |b| {
        b.iter(|| {
            let u = run("intruder", 8, GatingMode::Ungated);
            let g = run("intruder", 8, GatingMode::ClockGate { w0: 8 });
            black_box(compare_runs(&u, &g).energy_reduction)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
