//! Table I — derivation of the Alpha 21264 65 nm power factors.
//!
//! The power model is analytic, so this benchmark measures the cost of the
//! derivation itself and of rendering the table (it also acts as a regression
//! guard: the derived factors are asserted against the paper's values before
//! benchmarking starts).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clockgate_htm::experiments;
use htm_power::model::PowerModel;

fn bench(c: &mut Criterion) {
    // Sanity-check the reproduction before measuring anything.
    let m = PowerModel::alpha_21264_65nm();
    assert!((m.commit - 0.44).abs() < 1e-12);
    assert!((m.miss - 0.32).abs() < 1e-12);
    assert!((m.gated - 0.20).abs() < 1e-12);

    c.bench_function("table1/derive_power_model", |b| {
        b.iter(|| black_box(PowerModel::alpha_21264_65nm()));
    });
    c.bench_function("table1/render", |b| {
        b.iter(|| black_box(experiments::render_table1()));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
