//! Offline in-tree stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this crate provides the
//! subset of proptest the workspace's property tests use: range and tuple
//! strategies, [`strategy::Strategy::prop_map`], [`collection::vec`],
//! [`sample::select`], [`test_runner::ProptestConfig`] and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`]
//! macros.
//!
//! Semantics differ from real proptest in two deliberate ways: case
//! generation is *deterministic* (seeded from the test name, so failures
//! reproduce exactly on every platform), and failing cases are **not
//! shrunk** — the failing input is printed as-is.

#![warn(missing_docs)]

/// Strategies for generating values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree / shrinking; a strategy
    /// just samples.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Sample one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Two's-complement span arithmetic: correct for wide
                    // signed ranges (e.g. -100i8..100) where `end - start`
                    // would overflow the element type.
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range: every value is valid.
                        return rng.next_u64() as $t;
                    }
                    (lo as u64).wrapping_add(rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            let u = rng.next_f64();
            let v = self.start + u * (self.end - self.start);
            // Keep the upper bound exclusive even when rounding lands on
            // `end`; `next_down` handles signs and zero correctly (the old
            // bit-twiddled clamp broke for end <= 0.0).
            if v >= self.end {
                self.end.next_down().max(self.start)
            } else {
                v.max(self.start)
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            let u = rng.next_f64();
            self.start() + u * (self.end() - self.start())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate `Vec`s whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies over explicit value lists.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Choose uniformly from `options` (which must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }
}

/// Test-runner plumbing: configuration, RNG and case errors.
pub mod test_runner {
    /// Number of cases to run per property, mirroring
    /// `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many sampled cases each property is checked against.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a single sampled case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the input; the case is skipped.
        Reject,
        /// A `prop_assert*!` failed; the property is falsified.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure with a rendered message.
        pub fn fail(msg: impl std::fmt::Display) -> Self {
            Self::Fail(msg.to_string())
        }
    }

    /// Deterministic splitmix64 RNG driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded constructor; the `proptest!` macro seeds from the test
        /// name so each property gets an independent, reproducible stream.
        #[must_use]
        pub fn deterministic(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The proptest prelude: strategies, config and macros.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body against `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __seed = 0xcbf2_9ce4_8422_2325u64;
                for __b in stringify!($name).bytes() {
                    __seed = (__seed ^ u64::from(__b)).wrapping_mul(0x100_0000_01b3);
                }
                let mut __rng = $crate::test_runner::TestRng::deterministic(__seed);
                let mut __ran = 0u32;
                let mut __attempts = 0u32;
                while __ran < __cfg.cases && __attempts < __cfg.cases * 16 {
                    __attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __ran += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property '{}' falsified: {}", stringify!($name), msg);
                        }
                    }
                }
                assert!(
                    __ran >= __cfg.cases,
                    "property '{}': too many prop_assume! rejects \
                     (only {} of {} cases ran in {} attempts)",
                    stringify!($name),
                    __ran,
                    __cfg.cases,
                    __attempts
                );
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body, reporting the sampled case
/// on failure instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Reject the current sampled case (skip it without failing the property).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..1000 {
            let v = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn negative_f64_range_actually_varies() {
        let mut rng = TestRng::deterministic(3);
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let v = (-1.0f64..0.0).sample(&mut rng);
            assert!((-1.0..0.0).contains(&v), "out of range: {v}");
            distinct.insert(v.to_bits());
        }
        assert!(
            distinct.len() > 100,
            "range collapsed to {} values",
            distinct.len()
        );
    }

    #[test]
    fn wide_signed_range_does_not_overflow() {
        let mut rng = TestRng::deterministic(4);
        for _ in 0..1000 {
            let v = (-100i8..100).sample(&mut rng);
            assert!((-100..100).contains(&v));
            let w = (i64::MIN..=i64::MAX).sample(&mut rng);
            let _ = w;
        }
    }

    #[test]
    #[should_panic(expected = "too many prop_assume! rejects")]
    fn all_rejected_cases_fail_instead_of_passing() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(dead_code)]
            fn always_rejected(x in 0u64..10) {
                prop_assume!(x > 100);
            }
        }
        always_rejected();
    }

    #[test]
    fn select_and_vec_compose() {
        let mut rng = TestRng::deterministic(2);
        let strat = crate::collection::vec(prop::sample::select(vec![1u32, 2, 3]), 2..5);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (1..=3).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, prop_map, assume and assert all work.
        #[test]
        fn macro_smoke(x in 1u64..100, y in (0u64..10).prop_map(|v| v * 2)) {
            prop_assume!(x != 13);
            prop_assert!(x >= 1);
            prop_assert_eq!(y % 2, 0);
        }
    }
}
