//! Offline in-tree stand-in for the `serde` crate.
//!
//! The build container for this reproduction has no access to crates.io, so
//! the workspace vendors a minimal serialization facade with the same import
//! surface the code uses (`use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]`). Instead of serde's
//! serializer-visitor architecture, [`Serialize`] lowers a value into a small
//! JSON-like [`Value`] tree that the in-tree `serde_json` stand-in renders.
//!
//! The derive macros live in the sibling `serde_derive` crate and support
//! exactly the shapes this workspace uses: non-generic structs (named-field,
//! tuple and unit) and non-generic enums (unit, tuple and struct variants),
//! following serde's externally-tagged representation.

#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like dynamic value: the intermediate representation every
/// [`Serialize`] implementation lowers into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (rendered without a decimal point).
    U64(u64),
    /// Signed integer (rendered without a decimal point).
    I64(i64),
    /// Floating-point number (non-finite values render as `null`).
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up `key` in a [`Value::Map`]; `None` for other variants or a
    /// missing key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string slice of a [`Value::Str`], `None` otherwise.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The unsigned integer of a [`Value::U64`] (or a non-negative
    /// [`Value::I64`]), `None` otherwise.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The signed integer of a [`Value::I64`] (or an in-range
    /// [`Value::U64`]), `None` otherwise.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Any numeric variant widened to `f64`, `None` otherwise.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The boolean of a [`Value::Bool`], `None` otherwise.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements of a [`Value::Seq`], `None` otherwise.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }
}

/// Types that can lower themselves into a [`Value`] tree.
///
/// The stand-in equivalent of `serde::Serialize`; derived via
/// `#[derive(Serialize)]` or implemented by the blanket impls below.
pub trait Serialize {
    /// Lower `self` into the dynamic [`Value`] representation.
    fn serialize_value(&self) -> Value;
}

/// Marker trait mirroring `serde::Deserialize`.
///
/// Nothing in this workspace deserializes yet; the derive generates an empty
/// impl so that `#[derive(Deserialize)]` on the seed types keeps compiling.
pub trait Deserialize {}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64);
impl_serialize_int!(i8, i16, i32, i64);

impl Serialize for usize {
    fn serialize_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {}

impl Serialize for isize {
    fn serialize_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}
impl Deserialize for isize {}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for () {
    fn serialize_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Seq(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Seq(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {}

/// Render a serialized key as a JSON object key, mirroring serde_json's rule
/// that map keys must become strings (numbers and bools are stringified,
/// anything structural is rejected at the type level in real serde — here we
/// fall back to the compact debug of the value).
fn key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::F64(x) => x.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_string(&k.serialize_value()), v.serialize_value()))
                .collect(),
        )
    }
}
impl<K, V: Deserialize> Deserialize for BTreeMap<K, V> {}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        // Sort for deterministic output, matching the reproducibility goals
        // of the simulator itself.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.serialize_value()), v.serialize_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<K, V: Deserialize, S> Deserialize for HashMap<K, V, S> {}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T> Deserialize for BTreeSet<T> {}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn serialize_value(&self) -> Value {
        // Sort the rendered elements so hash iteration order never leaks
        // into serialized output.
        let mut items: Vec<Value> = self.iter().map(Serialize::serialize_value).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Seq(items)
    }
}
impl<T, S> Deserialize for HashSet<T, S> {}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(5u32.serialize_value(), Value::U64(5));
        assert_eq!((-3i64).serialize_value(), Value::I64(-3));
        assert_eq!(true.serialize_value(), Value::Bool(true));
        assert_eq!("x".serialize_value(), Value::Str("x".to_string()));
        assert_eq!(Option::<u64>::None.serialize_value(), Value::Null);
    }

    #[test]
    fn containers_lower_recursively() {
        assert_eq!(
            vec![1u64, 2].serialize_value(),
            Value::Seq(vec![Value::U64(1), Value::U64(2)])
        );
        let mut m = BTreeMap::new();
        m.insert("a", 1u64);
        assert_eq!(
            m.serialize_value(),
            Value::Map(vec![("a".to_string(), Value::U64(1))])
        );
    }
}
