//! Offline in-tree stand-in for the `serde_json` crate.
//!
//! Renders the [`serde::Value`] tree produced by the stub `serde` crate as
//! JSON text, and parses JSON text back into a [`Value`] tree via
//! [`from_str`]. Typed deserialization (`serde_json::from_str::<T>`) is not
//! provided; callers that read JSON back (e.g. the sweep runner's resume
//! path) walk the dynamic [`Value`] with its accessor methods instead.

#![warn(missing_docs)]

use std::fmt;

use serde::{Serialize, Value};

/// Serialization error.
///
/// The stand-in encoder is total over [`Value`], so this is never actually
/// produced; it exists so call sites written against real `serde_json`
/// signatures keep compiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as a pretty-printed JSON string (two-space indent,
/// matching `serde_json::to_string_pretty`).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON document into a dynamic [`Value`] tree.
///
/// Follows RFC 8259: objects, arrays, strings (with `\uXXXX` escapes,
/// including surrogate pairs), numbers, booleans and `null`. Integral
/// numbers without exponent land in [`Value::U64`] / [`Value::I64`] so that
/// values produced by [`to_string`] round-trip variant-exactly; anything
/// with a fraction or exponent becomes [`Value::F64`].
///
/// ```
/// let v = serde_json::from_str(r#"{"key": "a", "n": 3, "x": [1.5, true]}"#).unwrap();
/// assert_eq!(v.get("key").and_then(|k| k.as_str()), Some("a"));
/// assert_eq!(v.get("n").and_then(|n| n.as_u64()), Some(3));
/// ```
pub fn from_str(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(&format!("expected `{lit}`"))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    let combined =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.err("invalid \\u escape"),
                            }
                            continue;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return self.err("control character in string"),
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let Some(hex) = self.bytes.get(self.pos..end) else {
            return self.err("truncated \\u escape");
        };
        let s = std::str::from_utf8(hex).map_err(|_| Error("non-ascii \\u escape".into()))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Value::F64(x)),
            Err(_) => self.err("malformed number"),
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, v) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

/// JSON has no NaN/Infinity; mirror `serde_json`'s behaviour of emitting
/// `null` for non-finite floats.
fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = if x == x.trunc() && x.abs() < 1e15 {
            format!("{x:.1}")
        } else {
            format!("{x}")
        };
        out.push_str(&s);
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip_shapes() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::U64(1)),
            (
                "b".to_string(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn pretty_uses_two_space_indent() {
        let v = Value::Map(vec![("k".to_string(), Value::Str("v".to_string()))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": \"v\"\n}");
    }

    #[test]
    fn floats_render_like_serde_json() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
    }

    #[test]
    fn parse_round_trips_compact_encoding() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::U64(1)),
            ("neg".to_string(), Value::I64(-7)),
            ("x".to_string(), Value::F64(1.25)),
            (
                "s".to_string(),
                Value::Seq(vec![
                    Value::Bool(false),
                    Value::Null,
                    Value::Str("q".into()),
                ]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn parse_round_trips_pretty_encoding() {
        let v = Value::Map(vec![(
            "nested".to_string(),
            Value::Map(vec![("k".to_string(), Value::Seq(vec![Value::U64(3)]))]),
        )]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        assert_eq!(
            from_str(r#""a\"b\né😀""#).unwrap(),
            Value::Str("a\"b\né😀".to_string())
        );
        assert_eq!(from_str("\"héllo\"").unwrap(), Value::Str("héllo".into()));
    }

    #[test]
    fn parse_number_variants() {
        assert_eq!(from_str("42").unwrap(), Value::U64(42));
        assert_eq!(from_str("-42").unwrap(), Value::I64(-42));
        assert_eq!(from_str("2.5").unwrap(), Value::F64(2.5));
        assert_eq!(from_str("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(from_str("-0.5").unwrap(), Value::F64(-0.5));
        // u64::MAX does not fit i64 but is a valid U64.
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Value::U64(u64::MAX)
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\" 1}", "tru", "1 2", "{,}"] {
            assert!(from_str(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parsed_floats_round_trip_exactly() {
        // The encoder writes non-integral floats with the shortest
        // round-trippable representation, so parse(encode(x)) == x.
        for x in [1.0 / 3.0, 123.456789, 1e-12, 987654321.123] {
            let text = to_string(&x).unwrap();
            assert_eq!(from_str(&text).unwrap(), Value::F64(x));
        }
    }
}
