//! Offline in-tree stand-in for the `serde_json` crate.
//!
//! Renders the [`serde::Value`] tree produced by the stub `serde` crate as
//! JSON text. Only the encoding half is provided — nothing in this workspace
//! parses JSON yet.

#![warn(missing_docs)]

use std::fmt;

use serde::{Serialize, Value};

/// Serialization error.
///
/// The stand-in encoder is total over [`Value`], so this is never actually
/// produced; it exists so call sites written against real `serde_json`
/// signatures keep compiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as a pretty-printed JSON string (two-space indent,
/// matching `serde_json::to_string_pretty`).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, v) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

/// JSON has no NaN/Infinity; mirror `serde_json`'s behaviour of emitting
/// `null` for non-finite floats.
fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = if x == x.trunc() && x.abs() < 1e15 {
            format!("{x:.1}")
        } else {
            format!("{x}")
        };
        out.push_str(&s);
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip_shapes() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::U64(1)),
            (
                "b".to_string(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn pretty_uses_two_space_indent() {
        let v = Value::Map(vec![("k".to_string(), Value::Str("v".to_string()))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": \"v\"\n}");
    }

    #[test]
    fn floats_render_like_serde_json() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
    }
}
