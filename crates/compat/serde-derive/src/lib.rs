//! Offline in-tree stand-in for `serde_derive`.
//!
//! The build container has no crates.io access, so these derives are written
//! against `proc_macro` alone — no `syn`, no `quote`. The parser handles the
//! exact shapes this workspace uses:
//!
//! * non-generic structs: named-field, tuple (newtype collapses to its inner
//!   value, wider tuples to a sequence) and unit,
//! * non-generic enums with unit, tuple and struct variants, lowered in
//!   serde's externally-tagged representation.
//!
//! Generic items are rejected with a `compile_error!` pointing here, so an
//! unsupported use fails loudly at the definition site instead of producing
//! a wrong impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the item a derive was applied to.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Parsed shape of one enum variant.
enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

/// Derive the stand-in `serde::Serialize` (lowering into `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => error(&msg),
    }
}

/// Derive the stand-in `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let name = match &item {
                Item::NamedStruct { name, .. }
                | Item::TupleStruct { name, .. }
                | Item::UnitStruct { name }
                | Item::Enum { name, .. } => name,
            };
            format!("impl ::serde::Deserialize for {name} {{}}")
                .parse()
                .unwrap()
        }
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!(\"serde_derive (in-tree stand-in): {msg}\");")
        .parse()
        .unwrap()
}

/// Strip a raw-identifier prefix for use as a JSON key.
fn key_of(ident: &str) -> String {
    ident.strip_prefix("r#").unwrap_or(ident).to_string()
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".to_string()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".to_string()),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("generic item `{name}` is not supported"));
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            Some(TokenTree::Ident(id)) if id.to_string() == "where" => {
                Err(format!("`where` clause on `{name}` is not supported"))
            }
            _ => Err(format!("unrecognised struct body for `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            _ => Err(format!("expected enum body for `{name}`")),
        },
        other => Err(format!("cannot derive on `{other}` items")),
    }
}

/// Field names of a `{ ... }` struct body (names only; types are irrelevant
/// to the generated impl).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes and visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            return Err("expected field name".to_string());
        };
        fields.push(id.to_string());
        i += 1;
        // Skip `: Type` up to the next top-level comma. Generic arguments in
        // the type can contain commas, so track angle-bracket depth; the `>`
        // of an `->` (fn-pointer return type) is not a closing bracket.
        let mut angle = 0i32;
        let mut prev_dash = false;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    angle += 1;
                    prev_dash = false;
                }
                TokenTree::Punct(p) if p.as_char() == '>' && prev_dash => prev_dash = false,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '-' => prev_dash = true,
                _ => prev_dash = false,
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Number of top-level comma-separated fields in a `( ... )` struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut trailing_comma = false;
    let mut prev_dash = false;
    for t in &tokens {
        let was_dash = prev_dash;
        prev_dash = matches!(t, TokenTree::Punct(p) if p.as_char() == '-');
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && was_dash => {}
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip variant attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            return Err("expected variant name".to_string());
        };
        let vname = id.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                variants.push(Variant::Tuple(vname, count_tuple_fields(g.stream())));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push(Variant::Struct(vname, parse_named_fields(g.stream())?));
                i += 1;
            }
            _ => variants.push(Variant::Unit(vname)),
        }
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{key}\"), \
                         ::serde::Serialize::serialize_value(&self.{f}))",
                        key = key_of(f)
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Map(::std::vec![{}])\n}}\n}}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 0 } | Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}"
        ),
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n\
             ::serde::Serialize::serialize_value(&self.0)\n}}\n}}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|idx| format!("::serde::Serialize::serialize_value(&self.{idx})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Seq(::std::vec![{}])\n}}\n}}",
                elems.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants.iter().map(gen_variant_arm).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> ::serde::Value {{\n\
                 match self {{ {} }}\n}}\n}}",
                arms.join("\n")
            )
        }
    }
}

fn gen_variant_arm(variant: &Variant) -> String {
    match variant {
        Variant::Unit(v) => format!(
            "Self::{v} => ::serde::Value::Str(::std::string::String::from(\"{key}\")),",
            key = key_of(v)
        ),
        Variant::Tuple(v, arity) => {
            let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
            let inner = if *arity == 1 {
                "::serde::Serialize::serialize_value(__f0)".to_string()
            } else {
                let elems: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                    .collect();
                format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
            };
            format!(
                "Self::{v}({binds}) => ::serde::Value::Map(::std::vec![\
                 (::std::string::String::from(\"{key}\"), {inner})]),",
                binds = binders.join(", "),
                key = key_of(v)
            )
        }
        Variant::Struct(v, fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{key}\"), \
                         ::serde::Serialize::serialize_value({f}))",
                        key = key_of(f)
                    )
                })
                .collect();
            format!(
                "Self::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                 (::std::string::String::from(\"{key}\"), \
                 ::serde::Value::Map(::std::vec![{entries}]))]),",
                binds = fields.join(", "),
                key = key_of(v),
                entries = entries.join(", ")
            )
        }
    }
}
