//! Offline in-tree stand-in for the `rand` crate (0.8 API subset).
//!
//! `htm-sim` ships its own deterministic xoshiro256** generator and only
//! uses `rand` for the [`RngCore`] trait so that workload generators can be
//! written against the standard interface. This stub provides that trait
//! (and the [`Error`] type its fallible method mentions) with the same
//! signatures as rand 0.8.

#![warn(missing_docs)]

use std::fmt;

/// Error type for fallible RNG operations, mirroring `rand::Error`.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Create an error with a static message.
    #[must_use]
    pub fn new(msg: &'static str) -> Self {
        Self { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator trait, mirroring `rand::RngCore` 0.8.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fill `dest` with random bytes, reporting failure (infallible for
    /// every generator in this workspace).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}
