//! Offline in-tree stand-in for the `criterion` crate.
//!
//! Provides the authoring API the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`Throughput`], [`criterion_group!`] and
//! [`criterion_main!`] — backed by a deliberately simple harness: each
//! benchmark is warmed up once, then timed over a fixed number of samples
//! whose mean and min/max are printed. No statistical analysis, no HTML
//! reports, no `target/criterion` output; the point is that `cargo bench`
//! compiles and produces usable wall-clock numbers in an offline container.

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser identity function, re-exported for benches that
/// import it from `criterion` rather than `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of abstract elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, running it repeatedly and recording the total.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call, then a fixed sample of timed calls.
        std_black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark configuration and result sink, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` forwards trailing CLI args; the first non-flag
        // argument is a substring filter, like the real harness.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self {
            sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Benchmark a single function under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let sample_size = self.sample_size;
        self.run_one(&id, sample_size, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut per_iter = Vec::with_capacity(sample_size);
        for _ in 0..sample_size.max(1) {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 1,
            };
            f(&mut b);
            per_iter.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        print!(
            "bench: {id:<50} mean {:>12}  [min {}, max {}]",
            fmt_time(mean),
            fmt_time(min),
            fmt_time(max)
        );
        if let Some(tp) = throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if mean > 0.0 {
                print!("  {:.3e} {unit}/s", count as f64 / mean);
            }
        }
        println!();
    }
}

/// A group of related benchmarks sharing configuration, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Accepted for API compatibility; the stand-in harness always does a
    /// single untimed warm-up call instead of a timed warm-up window.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in harness times a fixed
    /// sample count rather than a wall-clock window.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks in this group with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a function under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let throughput = self.throughput;
        self.criterion.run_one(&full, sample_size, throughput, f);
        self
    }

    /// Finish the group (a no-op in the stand-in harness).
    pub fn finish(self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Define a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the bench entry point, mirroring `criterion::criterion_main!`.
/// Bench targets using this must set `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            sample_size: 2,
            filter: None,
        };
        let mut calls = 0u32;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        // 2 samples x (1 warm-up + 1 timed) = 4 calls.
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_applies_filter() {
        let mut c = Criterion {
            sample_size: 1,
            filter: Some("nomatch".to_string()),
        };
        let mut calls = 0u32;
        let mut g = c.benchmark_group("g");
        g.bench_function("skipped", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 0);
    }
}
