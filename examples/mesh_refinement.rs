//! Mesh-refinement scenario (yada-like: long transactions, loop-repeated
//! conflicts) with a look inside the gating controller.
//!
//! Demonstrates the protocol-level counters of the paper's mechanism: how
//! often victims are clock-gated, how often their gating period is *renewed*
//! because the aborting transaction is still committing in the same
//! directory (Fig. 2(f)), and why the victims were finally woken.
//!
//! ```bash
//! cargo run --release --example mesh_refinement [procs]
//! ```

use clockgate_htm::sim::{compare_runs, GatingMode, SimulationBuilder};
use htm_workloads::WorkloadScale;

fn main() {
    let procs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let seed = 42;
    println!("Delaunay mesh refinement (yada-like workload) on {procs} processors\n");

    let ungated = SimulationBuilder::new()
        .processors(procs)
        .workload_by_name("yada", WorkloadScale::Full, seed)
        .unwrap()
        .gating(GatingMode::Ungated)
        .run()
        .expect("baseline run");
    let gated = SimulationBuilder::new()
        .processors(procs)
        .workload_by_name("yada", WorkloadScale::Full, seed)
        .unwrap()
        .gating(GatingMode::ClockGate { w0: 8 })
        .run()
        .expect("gated run");

    let g = gated.gating.expect("gating stats");
    println!(
        "baseline:  {} cycles, {} aborts ({:.2} per commit)",
        ungated.outcome.total_cycles,
        ungated.outcome.total_aborts,
        ungated.outcome.abort_rate()
    );
    println!(
        "gated:     {} cycles, {} aborts ({:.2} per commit)",
        gated.outcome.total_cycles,
        gated.outcome.total_aborts,
        gated.outcome.abort_rate()
    );
    println!();
    println!("gating controller activity:");
    println!("  Stop Clock commands (gatings) : {}", g.gatings);
    println!("  gating periods renewed        : {}", g.renewals);
    println!(
        "  wake: aborter left directory  : {}",
        g.ungate_aborter_gone
    );
    println!(
        "  wake: aborter on different tx : {}",
        g.ungate_different_tx
    );
    println!("  wake: null TxInfoReq reply    : {}", g.ungate_null_reply);
    println!(
        "  stale OFF bits reconciled     : {}",
        g.stale_off_reconciled
    );
    println!();
    println!(
        "  processor-cycles spent gated  : {}",
        gated.outcome.total_gated_cycles()
    );

    let cmp = compare_runs(&ungated, &gated);
    println!();
    println!(
        "speed-up: {:.3}x   energy reduction: {:.3}x   avg power reduction: {:.3}x",
        cmp.speedup, cmp.energy_reduction, cmp.average_power_reduction
    );
}
