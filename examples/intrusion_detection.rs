//! Intrusion-detection scenario (the paper's "highly-conflicting" workload).
//!
//! Runs the intruder-like workload across 4, 8 and 16 processors and shows
//! how the benefit of clock-gating on abort grows with the contention level,
//! reproducing the trend behind Figs. 4 and 5.
//!
//! ```bash
//! cargo run --release --example intrusion_detection
//! ```

use clockgate_htm::report::format_table;
use clockgate_htm::sim::{compare_runs, GatingMode, SimulationBuilder};
use htm_workloads::WorkloadScale;

fn main() {
    let seed = 42;
    println!("Intrusion detection (intruder-like workload): scaling the processor count\n");
    let mut rows = Vec::new();
    for procs in [4usize, 8, 16] {
        let ungated = SimulationBuilder::new()
            .processors(procs)
            .workload_by_name("intruder", WorkloadScale::Full, seed)
            .unwrap()
            .gating(GatingMode::Ungated)
            .run()
            .expect("baseline run");
        let gated = SimulationBuilder::new()
            .processors(procs)
            .workload_by_name("intruder", WorkloadScale::Full, seed)
            .unwrap()
            .gating(GatingMode::ClockGate { w0: 8 })
            .run()
            .expect("gated run");
        let cmp = compare_runs(&ungated, &gated);
        let gating = gated.gating.expect("gating stats");
        rows.push(vec![
            procs.to_string(),
            format!("{:.2}", ungated.outcome.abort_rate()),
            format!("{:.2}", gated.outcome.abort_rate()),
            gating.gatings.to_string(),
            format!("{:.3}x", cmp.speedup),
            format!("{:+.1}%", cmp.energy_savings_percent()),
            format!("{:+.1}%", cmp.average_power_savings_percent()),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "procs",
                "aborts/commit (base)",
                "aborts/commit (gated)",
                "gatings",
                "speed-up",
                "energy savings",
                "avg power savings"
            ],
            &rows
        )
    );
    println!("Higher processor counts conflict more, gate more, and save more energy —");
    println!("the trend the paper reports for its highly-conflicting application.");
}
