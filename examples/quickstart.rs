//! Quickstart: run one STAMP-like workload with and without clock gating and
//! print the comparison the paper's Figs. 4–6 are built from.
//!
//! ```bash
//! cargo run --release --example quickstart [workload] [procs] [w0]
//! ```

use clockgate_htm::sim::{compare_runs, GatingMode, SimulationBuilder};
use htm_workloads::WorkloadScale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = args.get(1).map_or("intruder", String::as_str);
    let procs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let w0: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(8);
    let seed = 42;

    println!("== Clock Gate on Abort: quickstart ==");
    println!("workload={workload} processors={procs} W0={w0}\n");

    let ungated = SimulationBuilder::new()
        .processors(procs)
        .workload_by_name(workload, WorkloadScale::Full, seed)
        .expect("known workload")
        .gating(GatingMode::Ungated)
        .run()
        .expect("simulation must complete");

    let gated = SimulationBuilder::new()
        .processors(procs)
        .workload_by_name(workload, WorkloadScale::Full, seed)
        .expect("known workload")
        .gating(GatingMode::ClockGate { w0 })
        .run()
        .expect("simulation must complete");

    for (label, report) in [
        ("without clock gating", &ungated),
        ("with clock gating", &gated),
    ] {
        let o = &report.outcome;
        println!("--- {label} ---");
        println!("  parallel execution time : {} cycles", o.total_cycles);
        println!(
            "  commits / aborts        : {} / {}",
            o.total_commits, o.total_aborts
        );
        println!(
            "  abort rate              : {:.2} aborts per commit",
            o.abort_rate()
        );
        println!(
            "  processor-cycles          run={} miss={} commit={} gated={}",
            o.state_cycles.iter().map(|s| s.run).sum::<u64>(),
            o.total_miss_cycles(),
            o.total_commit_cycles(),
            o.total_gated_cycles(),
        );
        println!(
            "  total energy            : {:.0} (run-power x cycles)",
            report.total_energy()
        );
        println!(
            "  bus transfers           : {} control, {} data ({} bus-busy cycles)",
            o.bus.control_transfers, o.bus.data_transfers, o.bus.busy_cycles
        );
        if let Some(g) = &report.gating {
            println!(
                "  gatings / renewals      : {} / {} (wakes: gone={} diff-tx={} null={})",
                g.gatings,
                g.renewals,
                g.ungate_aborter_gone,
                g.ungate_different_tx,
                g.ungate_null_reply
            );
        }
        println!();
    }

    let cmp = compare_runs(&ungated, &gated);
    println!("--- comparison (paper metrics) ---");
    println!(
        "  speed-up (N1/N2)             : {:.3}x ({:+.1}%)",
        cmp.speedup,
        cmp.speedup_percent()
    );
    println!(
        "  energy reduction (Eug/Eg)    : {:.3}x ({:+.1}% savings)",
        cmp.energy_reduction,
        cmp.energy_savings_percent()
    );
    println!(
        "  average power reduction      : {:.3}x ({:+.1}% savings)",
        cmp.average_power_reduction,
        cmp.average_power_savings_percent()
    );
}
