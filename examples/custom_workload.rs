//! Building a custom transactional workload and machine configuration.
//!
//! Shows the two ways to feed the simulator: a hand-written trace (explicit
//! transactions and operations — useful for protocol studies) and a custom
//! [`SyntheticSpec`] (a parameterized workload like the built-in STAMP-like
//! generators). Also shows how to deviate from the Table II machine.
//!
//! ```bash
//! cargo run --release --example custom_workload
//! ```

use clockgate_htm::sim::{compare_runs, GatingMode, SimulationBuilder};
use htm_sim::config::SimConfig;
use htm_tcc::txn::{Op, ThreadTrace, Transaction, WorkloadTrace};
use htm_workloads::spec::{Range, SyntheticSpec};
use htm_workloads::WorkloadScale;

/// A tiny hand-written workload: four threads repeatedly increment a shared
/// counter (read-modify-write of line 0) and update private state.
fn hand_written(threads: usize, increments: usize) -> WorkloadTrace {
    let traces = (0..threads)
        .map(|t| {
            let private_base = 0x10000 + (t as u64) * 0x1000;
            let txs = (0..increments)
                .map(|i| {
                    Transaction::with_pre_compute(
                        0x400, // one static transaction: the increment loop body
                        20,
                        vec![
                            Op::Read(0),                                   // load the shared counter
                            Op::Compute(15),                               // compute the new value
                            Op::Write(private_base + (i as u64 % 8) * 64), // log locally
                            Op::Write(0),                                  // store the counter
                        ],
                    )
                })
                .collect();
            ThreadTrace::new(txs)
        })
        .collect();
    WorkloadTrace::new("shared-counter", traces)
}

fn main() {
    // --- 1. Hand-written trace on a customized machine ----------------------
    let mut cfg = SimConfig::table2(4);
    cfg.directory_latency = 20; // pretend the directories are further away
    let workload = hand_written(4, 40);

    let ungated = SimulationBuilder::new()
        .config(cfg.clone())
        .workload(workload.clone())
        .gating(GatingMode::Ungated)
        .run()
        .expect("baseline");
    let gated = SimulationBuilder::new()
        .config(cfg)
        .workload(workload)
        .gating(GatingMode::ClockGate { w0: 8 })
        .run()
        .expect("gated");
    let cmp = compare_runs(&ungated, &gated);
    println!("hand-written shared-counter workload (4 procs, 20-cycle directories):");
    println!(
        "  baseline {} cycles / {:.2} aborts per commit; gated {} cycles; energy savings {:+.1}%\n",
        ungated.outcome.total_cycles,
        ungated.outcome.abort_rate(),
        gated.outcome.total_cycles,
        cmp.energy_savings_percent()
    );

    // --- 2. Custom synthetic specification ----------------------------------
    let spec = SyntheticSpec {
        name: "custom-kv-store".into(),
        seed: 7,
        hot_lines: 4,
        cold_lines: 256,
        private_lines: 32,
        txs_per_thread: 50,
        static_txs: 2,
        reads_per_tx: Range::new(3, 6),
        writes_per_tx: Range::new(1, 2),
        hot_read_prob: 0.30,
        hot_write_prob: 0.35,
        shared_cold_prob: 0.8,
        compute_between_ops: Range::new(2, 6),
        pre_compute: Range::new(5, 25),
        site_rmw_prob: 0.6,
        tx_id_base: 0x9_0000,
    };
    let procs = 8;
    let trace = spec.generate(procs, WorkloadScale::Full);
    println!(
        "custom synthetic workload '{}': {} threads, {} transactions, footprint {} bytes",
        trace.name,
        trace.num_threads(),
        trace.total_transactions(),
        spec.layout(procs).footprint_bytes()
    );
    let report = SimulationBuilder::new()
        .processors(procs)
        .workload(trace)
        .gating(GatingMode::ClockGate { w0: 8 })
        .run()
        .expect("custom run");
    println!(
        "  {} cycles, {} commits, {} aborts, {} gatings, total energy {:.0}",
        report.outcome.total_cycles,
        report.outcome.total_commits,
        report.outcome.total_aborts,
        report.outcome.total_gatings,
        report.total_energy()
    );
}
