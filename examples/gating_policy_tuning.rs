//! Tuning the gating-aware contention manager (the paper's Fig. 7 study and
//! the ablations of the mechanism).
//!
//! Sweeps the `W0` constant of Eq. 8 and compares the paper's policy against
//! the alternative abort-handling strategies (plain TCC, exponential polite
//! back-off, fixed gating window, staircase without the renewal check,
//! linear back-off).
//!
//! ```bash
//! cargo run --release --example gating_policy_tuning [workload] [procs]
//! ```

use clockgate_htm::report::format_table;
use clockgate_htm::sim::{compare_runs, GatingMode, SimReport, SimulationBuilder};
use htm_workloads::WorkloadScale;

fn run(workload: &str, procs: usize, mode: GatingMode) -> SimReport {
    SimulationBuilder::new()
        .processors(procs)
        .workload_by_name(workload, WorkloadScale::Full, 42)
        .unwrap()
        .gating(mode)
        .run()
        .expect("simulation")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = args.get(1).map_or("intruder", String::as_str);
    let procs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);

    println!("Gating-policy tuning on {workload} with {procs} processors\n");
    let baseline = run(workload, procs, GatingMode::Ungated);

    println!("-- W0 sensitivity (Eq. 8 staircase, the paper's Fig. 7) --");
    let mut rows = Vec::new();
    for w0 in [1u64, 2, 4, 8, 16, 32, 64] {
        let gated = run(workload, procs, GatingMode::ClockGate { w0 });
        let cmp = compare_runs(&baseline, &gated);
        rows.push(vec![
            w0.to_string(),
            format!("{:.3}x", cmp.speedup),
            format!("{:+.1}%", cmp.energy_savings_percent()),
            gated.gating.map_or(0, |g| g.renewals).to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(&["W0", "speed-up", "energy savings", "renewals"], &rows)
    );

    println!("-- Abort-handling strategies --");
    let mut rows = Vec::new();
    let modes: [(&str, GatingMode); 10] = [
        ("plain TCC (baseline)", GatingMode::Ungated),
        (
            "exponential back-off",
            GatingMode::ExponentialBackoff { base: 32, cap: 8 },
        ),
        ("clock gate, Eq. 8 (paper)", GatingMode::ClockGate { w0: 8 }),
        (
            "clock gate, fixed 64-cycle window",
            GatingMode::ClockGateFixedWindow { window: 64 },
        ),
        (
            "clock gate, no renewal check",
            GatingMode::ClockGateNoRenew { w0: 8 },
        ),
        (
            "clock gate, linear back-off",
            GatingMode::ClockGateLinear { w0: 8 },
        ),
        (
            "adaptive W0 (per-victim EWMA)",
            GatingMode::AdaptiveW0 { w0: 8 },
        ),
        (
            "hybrid: gate twice, then back off",
            GatingMode::Hybrid {
                gate_limit: 2,
                w0: 8,
                base: 32,
                cap: 8,
            },
        ),
        ("DVFS throttle", GatingMode::Throttle { w0: 8 }),
        ("oracle (gate until aborter commits)", GatingMode::Oracle),
    ];
    for (name, mode) in modes {
        let report = run(workload, procs, mode);
        let cmp = compare_runs(&baseline, &report);
        rows.push(vec![
            name.to_string(),
            report.outcome.total_cycles.to_string(),
            format!("{:.2}", report.outcome.abort_rate()),
            format!("{:+.1}%", cmp.energy_savings_percent()),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["strategy", "cycles", "aborts/commit", "energy vs baseline"],
            &rows
        )
    );
}
