//! Umbrella crate for the *Clock Gate on Abort* reproduction.
//!
//! This crate re-exports the public API of every workspace member so that
//! examples and integration tests can use a single import root. Library
//! consumers should depend on [`clockgate_htm`] (the paper's contribution and
//! the experiment harness) directly; the substrate crates are re-exported for
//! advanced use (building custom workloads, instrumenting the protocol, or
//! embedding the simulation engine elsewhere).
//!
//! ```
//! use clock_gate_on_abort::core::{GatingMode, SimulationBuilder};
//! use clock_gate_on_abort::workloads::WorkloadScale;
//!
//! let report = SimulationBuilder::new()
//!     .processors(4)
//!     .workload_by_name("genome", WorkloadScale::Test, 42)
//!     .unwrap()
//!     .gating(GatingMode::ClockGate { w0: 8 })
//!     .run()
//!     .unwrap();
//! assert!(report.outcome.total_commits > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use clockgate_htm as core;
pub use htm_mem as mem;
pub use htm_power as power;
pub use htm_sim as sim;
pub use htm_tcc as tcc;
pub use htm_workloads as workloads;
