#!/bin/sh
# Regenerate BENCH_pdes.json from the pdes_scaling criterion bench.
#
# Usage: tools/bench_pdes.sh [output-file]
#
# Runs the full engine matrix (hotspot + clustered at 64p and 256p on the
# default sharded fabric): fast-forward, shard-parallel, windowed with a
# one-worker lane pool (sequential in-place path) and windowed-parallel
# with a four-worker lane pool (per-window group lanes fanned out), and
# records the honest wall-clock numbers for the host it ran on. On a
# single-core host the parallel arms can only lose — commit those numbers
# anyway; the point of the artifact is tracking the overhead, not
# advertising a speedup.
set -eu

out="${1:-BENCH_pdes.json}"
cd "$(dirname "$0")/.."

raw=$(cargo bench -p htm-bench --bench pdes_scaling 2>/dev/null | grep '^bench: pdes_scaling/')

threads=$( (nproc || sysctl -n hw.ncpu || echo 1) 2>/dev/null | head -n1 )

printf '%s\n' "$raw" | awk -v threads="$threads" '
function to_ms(v, u) {
    if (u == "ns") return v / 1e6
    if (u == "µs" || u == "us") return v / 1e3
    if (u == "ms") return v
    if (u == "s")  return v * 1e3
    return v
}
{
    # bench: pdes_scaling/<workload>_<procs>p_<engine> mean V U [min V U, max V U]
    id = $2
    sub("^pdes_scaling/", "", id)
    n = split(id, part, "_")
    engine = part[n]
    procs = part[n - 1]; sub("p$", "", procs)
    workload = part[1]
    for (i = 2; i <= n - 2; i++) workload = workload "_" part[i]
    mean = to_ms($4, $5)
    minv = $7; minu = $8; sub(",$", "", minu)
    maxv = $10; maxu = $11; sub("\\]$", "", maxu)
    cells[++c] = sprintf(\
        "    {\n      \"workload\": \"%s\",\n      \"procs\": %s,\n      \"engine\": \"%s\",\n      \"mean_ms\": %.6f,\n      \"min_ms\": %.6f,\n      \"max_ms\": %.6f\n    }",
        workload, procs, engine, mean, to_ms(minv, minu), to_ms(maxv, maxu))
}
END {
    print "{"
    print "  \"bench\": \"pdes_scaling\","
    print "  \"topology\": \"sharded directories (one bank per directory; crossbar, 2-cycle traversal)\","
    print "  \"gating\": \"clock-gate w0=8\","
    print "  \"workload_scale\": \"test\","
    print "  \"threads\": " threads ","
    print "  \"cells\": ["
    for (i = 1; i <= c; i++) printf "%s%s\n", cells[i], (i < c ? "," : "")
    print "  ]"
    print "}"
}' > "$out"

echo "wrote $out"
