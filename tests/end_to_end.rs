//! Cross-crate integration tests: full simulations through the public API.

use clockgate_htm::sim::{compare_runs, GatingMode, SimulationBuilder};
use htm_workloads::{workload_names, WorkloadScale};

fn run(workload: &str, procs: usize, mode: GatingMode, seed: u64) -> clockgate_htm::SimReport {
    SimulationBuilder::new()
        .processors(procs)
        .workload_by_name(workload, WorkloadScale::Test, seed)
        .unwrap()
        .gating(mode)
        .cycle_limit(50_000_000)
        .run()
        .unwrap()
}

#[test]
fn every_workload_completes_under_every_mode() {
    // Liveness: every transaction of every workload commits, gated or not,
    // and the accounting is internally consistent.
    for workload in workload_names() {
        for mode in [GatingMode::Ungated, GatingMode::ClockGate { w0: 8 }] {
            let report = run(workload, 4, mode, 3);
            assert!(
                report.outcome.total_commits > 0,
                "{workload} under {mode:?}"
            );
            report.outcome.check_consistency().unwrap_or_else(|e| {
                panic!("inconsistent accounting for {workload} under {mode:?}: {e}")
            });
            assert!(
                report.energy.accounting_discrepancy() < 1e-9,
                "direct and interval energy accountings must agree for {workload}"
            );
        }
    }
}

#[test]
fn commit_counts_are_mode_independent() {
    // Clock gating changes *when* transactions run, never *whether* they
    // commit: the committed-transaction count must match the trace exactly.
    for workload in ["genome", "yada", "intruder"] {
        let expected = htm_workloads::by_name(workload, 8, WorkloadScale::Test, 9)
            .unwrap()
            .total_transactions() as u64;
        for mode in [
            GatingMode::Ungated,
            GatingMode::ExponentialBackoff { base: 16, cap: 6 },
            GatingMode::ClockGate { w0: 8 },
            GatingMode::ClockGateNoRenew { w0: 8 },
        ] {
            let report = run(workload, 8, mode, 9);
            assert_eq!(
                report.outcome.total_commits, expected,
                "{workload} under {mode:?} must commit every transaction exactly once"
            );
        }
    }
}

#[test]
fn simulations_are_bit_for_bit_reproducible() {
    let a = run("intruder", 8, GatingMode::ClockGate { w0: 8 }, 5);
    let b = run("intruder", 8, GatingMode::ClockGate { w0: 8 }, 5);
    assert_eq!(a.outcome.total_cycles, b.outcome.total_cycles);
    assert_eq!(a.outcome.total_aborts, b.outcome.total_aborts);
    assert_eq!(a.outcome.total_gatings, b.outcome.total_gatings);
    assert_eq!(a.outcome.state_cycles, b.outcome.state_cycles);
    assert!((a.total_energy() - b.total_energy()).abs() < 1e-9);
}

#[test]
fn different_seeds_produce_different_schedules() {
    let a = run("intruder", 4, GatingMode::Ungated, 1);
    let b = run("intruder", 4, GatingMode::Ungated, 2);
    assert_ne!(
        (a.outcome.total_cycles, a.outcome.total_aborts),
        (b.outcome.total_cycles, b.outcome.total_aborts)
    );
}

#[test]
fn gating_moves_cycles_into_the_gated_state_on_contended_runs() {
    let ungated = run("intruder", 8, GatingMode::Ungated, 11);
    let gated = run("intruder", 8, GatingMode::ClockGate { w0: 8 }, 11);
    assert_eq!(ungated.outcome.total_gated_cycles(), 0);
    assert!(gated.outcome.total_gated_cycles() > 0);
    assert!(gated.outcome.total_gatings > 0);
    // The gating-aware contention manager never increases the abort count.
    assert!(gated.outcome.total_aborts <= ungated.outcome.total_aborts);
    let cmp = compare_runs(&ungated, &gated);
    assert!(cmp.energy_reduction.is_finite());
    assert!(cmp.speedup > 0.0);
}

#[test]
fn low_contention_workloads_barely_gate() {
    // genome (and ssca2) conflict rarely: the mechanism must stay out of the
    // way, exactly as Section VI argues.
    let gated = run("ssca2", 8, GatingMode::ClockGate { w0: 8 }, 7);
    let total_proc_cycles: u64 = gated.outcome.state_cycles.iter().map(|s| s.total()).sum();
    assert!(
        (gated.outcome.total_gated_cycles() as f64) < 0.05 * total_proc_cycles as f64,
        "a low-contention workload must spend <5% of processor cycles gated"
    );
}

#[test]
fn ungated_baseline_never_reports_gated_cycles() {
    for workload in ["genome", "yada", "intruder", "kmeans"] {
        let r = run(workload, 4, GatingMode::Ungated, 13);
        assert_eq!(r.outcome.total_gated_cycles(), 0);
        assert_eq!(r.outcome.total_gatings, 0);
        assert!(r.gating.is_none());
    }
}

#[test]
fn sixteen_processor_configurations_run() {
    let r = run("intruder", 16, GatingMode::ClockGate { w0: 8 }, 21);
    assert_eq!(r.outcome.num_procs, 16);
    assert!(r.outcome.total_commits > 0);
    r.outcome.check_consistency().unwrap();
}
