//! Round-trip contract of the trace subsystem (see `docs/DESIGN.md`,
//! "Trace format & round-trip contract").
//!
//! Three properties, proptested over (workload × procs × seed):
//!
//! 1. **Value identity**: record → write → read back is the identity on
//!    [`WorkloadTrace`] values.
//! 2. **Byte identity**: re-rendering a read-back trace reproduces the
//!    original file byte for byte (the reader materializes exactly what the
//!    writer wrote — no canonicalization drift).
//! 3. **Report identity**: simulating the read-back trace produces a
//!    byte-identical serialized report to simulating the generator's
//!    original — a trace file is a full-fidelity substitute for the
//!    generator that produced it.
//!
//! Plus the bounded-memory scale check: a tiled trace with more than a
//! million memory references streams through the O(1)-state validator.

use clock_gate_on_abort::core::report::to_json;
use clock_gate_on_abort::core::sim::{EngineKind, GatingMode, SimulationBuilder};
use clock_gate_on_abort::tcc::txn::WorkloadTrace;
use clock_gate_on_abort::workloads::{by_name, trace, WorkloadScale, CORPUS_WORKLOADS};
use proptest::prelude::*;

fn simulate(workload: WorkloadTrace) -> String {
    let report = SimulationBuilder::new()
        .processors(workload.num_threads())
        .workload(workload)
        .gating(GatingMode::ClockGate { w0: 8 })
        .cycle_limit(50_000_000)
        .engine(EngineKind::FastForward)
        .run()
        .unwrap();
    to_json(&report)
}

/// The palette the properties sample from: the paper's trio plus the whole
/// extension corpus.
fn palette() -> Vec<&'static str> {
    let mut names = vec!["genome", "yada", "intruder"];
    names.extend(CORPUS_WORKLOADS);
    names
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn record_write_read_resimulate_is_byte_identical(
        workload_idx in 0usize..12,
        procs in 2usize..5,
        seed in 0u64..64,
    ) {
        let name = palette()[workload_idx];
        let original = by_name(name, procs, WorkloadScale::Test, seed).unwrap();
        let text = trace::render(&original);
        let loaded = trace::read_from(text.as_bytes()).unwrap();

        // 1. Value identity.
        prop_assert_eq!(&loaded.workload, &original);
        prop_assert_eq!(loaded.fingerprint, original.fingerprint());

        // 2. Byte identity of the re-rendered file.
        prop_assert_eq!(trace::render(&loaded.workload), text);

        // 3. Byte identity of the simulation reports.
        prop_assert_eq!(simulate(loaded.workload), simulate(original));
    }

    /// O(1)-state validation agrees with the full reader on every summary
    /// field, so `validate` can gate huge traces without materializing them.
    #[test]
    fn validate_agrees_with_the_full_reader(
        workload_idx in 0usize..12,
        seed in 0u64..64,
    ) {
        let name = palette()[workload_idx];
        let original = by_name(name, 3, WorkloadScale::Test, seed).unwrap();
        let text = trace::render(&original);
        let summary = trace::validate_from(text.as_bytes()).unwrap();
        prop_assert_eq!(summary.name, original.name.clone());
        prop_assert_eq!(summary.procs, 3);
        prop_assert_eq!(summary.transactions, original.total_transactions());
        prop_assert_eq!(summary.memory_refs, original.total_memory_refs());
        prop_assert_eq!(summary.fingerprint, original.fingerprint());
    }
}

#[test]
fn a_million_reference_trace_streams_through_the_validator() {
    // `tiled` repeats each thread's transaction sequence, which is exactly
    // how `reproduce --record-trace --from name:...:xN` builds long traces.
    let base = by_name("intruder", 4, WorkloadScale::Test, 42).unwrap();
    let per_tile = base.total_memory_refs();
    let tiles = 1_000_000 / per_tile + 1;
    let big = base.tiled(tiles);
    assert!(big.total_memory_refs() > 1_000_000);

    let dir = std::env::temp_dir().join(format!("clockgate-bigtrace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("big.trace");
    trace::record_to_path(&path, &big).unwrap();

    // The validator holds only counters and the running fingerprint; the
    // multi-megabyte body is consumed line by line.
    let summary = trace::validate_path(&path).unwrap();
    assert_eq!(summary.memory_refs, big.total_memory_refs());
    assert_eq!(summary.transactions, base.total_transactions() * tiles);
    assert_eq!(summary.fingerprint, big.fingerprint());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tiling_preserves_the_round_trip() {
    let base = by_name("ring", 4, WorkloadScale::Test, 7).unwrap();
    let tiled = base.tiled(3);
    let loaded = trace::read_from(trace::render(&tiled).as_bytes()).unwrap();
    assert_eq!(loaded.workload, tiled);
}
