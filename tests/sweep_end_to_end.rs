//! End-to-end sensitivity-sweep tests through the umbrella crate: grid →
//! runner → JSONL/Pareto artifacts, including resume and engine agreement.

use std::fs;
use std::path::PathBuf;

use clock_gate_on_abort::core::sim::EngineKind;
use clock_gate_on_abort::core::sweep::{
    self, dominates, pareto_frontiers, pareto_frontiers_with, run_sweep, run_sweep_with,
    CellRecord, SweepGrid, SweepObjective,
};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cgoa-sweep-e2e-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn smoke_sweep_end_to_end() {
    let grid = SweepGrid::smoke();
    let dir = test_dir("smoke");
    let outcome = run_sweep(&grid, EngineKind::FastForward, &dir, false).unwrap();
    assert_eq!(outcome.records.len(), grid.expand().len());
    assert_eq!(outcome.skipped, 0);

    // Every slice has a non-empty frontier and the frontier is a subset of
    // the slice's cells.
    assert!(!outcome.frontiers.is_empty());
    for f in &outcome.frontiers {
        assert!(
            !f.frontier.is_empty(),
            "{}@{} frontier",
            f.workload,
            f.procs
        );
        assert_eq!(f.frontier.len() + f.dominated.len(), f.cells);
        // No frontier point dominates another frontier point.
        for a in &f.frontier {
            for b in &f.frontier {
                assert!(!dominates(a, b), "{} dominates {}", a.key, b.key);
            }
        }
    }

    // The JSONL artifact parses back into exactly the records the runner
    // reported, in the same order.
    let text = fs::read_to_string(&outcome.jsonl_path).unwrap();
    let parsed: Vec<CellRecord> = text
        .lines()
        .map(|line| CellRecord::from_value(&serde_json::from_str(line).unwrap()).unwrap())
        .collect();
    assert_eq!(parsed, outcome.records);

    // Recomputing the frontiers from the parsed records reproduces the
    // artifact's frontiers.
    assert_eq!(pareto_frontiers(&parsed), outcome.frontiers);

    // A second, resumed invocation executes nothing and leaves every
    // artifact byte-identical.
    let before = fs::read(&outcome.pareto_path).unwrap();
    let resumed = run_sweep(&grid, EngineKind::FastForward, &dir, true).unwrap();
    assert_eq!(resumed.executed, 0);
    assert_eq!(fs::read(&resumed.pareto_path).unwrap(), before);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sweep_artifacts_are_engine_independent() {
    let grid = SweepGrid {
        workloads: vec!["yada".into()],
        ..SweepGrid::smoke()
    };
    let dir_fast = test_dir("fast");
    let dir_naive = test_dir("naive");
    run_sweep(&grid, EngineKind::FastForward, &dir_fast, false).unwrap();
    run_sweep(&grid, EngineKind::Naive, &dir_naive, false).unwrap();
    for name in [
        sweep::runner::JSONL_NAME,
        sweep::runner::PARETO_NAME,
        sweep::runner::SUMMARY_NAME,
        sweep::runner::BREAKDOWN_NAME,
    ] {
        assert_eq!(
            fs::read(dir_fast.join(name)).unwrap(),
            fs::read(dir_naive.join(name)).unwrap(),
            "{name} must be byte-identical across engines"
        );
    }
    let _ = fs::remove_dir_all(&dir_fast);
    let _ = fs::remove_dir_all(&dir_naive);
}

/// Acceptance gate: on every smoke cell the per-component ledger totals sum
/// to the legacy `EnergyReport.total_energy` within 1e-9, and the
/// `energy_breakdown.json` artifact is written next to the other sweep
/// artifacts.
#[test]
fn smoke_breakdown_components_sum_to_the_legacy_energy() {
    let grid = SweepGrid::smoke();
    let dir = test_dir("breakdown");
    let outcome = run_sweep(&grid, EngineKind::FastForward, &dir, false).unwrap();
    assert!(outcome.breakdown_path.exists());
    for record in &outcome.records {
        let core_sum: f64 = record.core_component_energies().iter().sum();
        let uncore_sum: f64 = record.uncore_component_energies().iter().sum();
        let tol = 1e-9 * record.total_energy.max(1.0);
        assert!(
            (core_sum - record.total_energy).abs() <= tol,
            "{}: core components sum to {core_sum}, legacy total is {}",
            record.key,
            record.total_energy
        );
        assert!(
            (core_sum + uncore_sum - record.total_energy_with_uncore).abs() <= tol,
            "{}: grand total mismatch",
            record.key
        );
        assert!(
            record.uncore_energy > 0.0,
            "{}: uncore is charged",
            record.key
        );
    }
    let breakdown = fs::read_to_string(&outcome.breakdown_path).unwrap();
    assert!(breakdown.contains("core_pipeline"));
    assert!(breakdown.contains("directory_sram"));
    let _ = fs::remove_dir_all(&dir);
}

/// Acceptance gate: on the `backoff` preset grid the EDP frontier differs
/// from the raw-energy frontier (the contended intruder@8 slice keeps both
/// the ungated and a clock-gated point on the energy frontier, while EDP
/// folds the time axis in and drops the slower point).
#[test]
fn edp_objective_changes_the_frontier_on_the_backoff_preset() {
    let grid = SweepGrid::by_name("backoff").unwrap();
    let dir = test_dir("objective");
    let outcome = run_sweep_with(
        &grid,
        EngineKind::FastForward,
        &dir,
        false,
        SweepObjective::Edp,
    )
    .unwrap();
    let energy_frontiers = pareto_frontiers(&outcome.records);
    let edp_frontiers = pareto_frontiers_with(&outcome.records, SweepObjective::Edp);
    assert_eq!(outcome.frontiers, edp_frontiers);
    let keys = |fs: &[sweep::SliceFrontier]| -> Vec<Vec<String>> {
        fs.iter()
            .map(|f| f.frontier.iter().map(|p| p.key.clone()).collect())
            .collect()
    };
    assert_ne!(
        keys(&energy_frontiers),
        keys(&edp_frontiers),
        "the EDP frontier must differ from the raw-energy frontier on this preset"
    );
    // Subset property: EDP-dominance is implied by energy-dominance, so
    // every EDP-frontier point also sits on the energy frontier.
    for (e, d) in energy_frontiers.iter().zip(&edp_frontiers) {
        for p in &d.frontier {
            assert!(
                e.frontier.iter().any(|q| q.key == p.key),
                "{} is on the EDP frontier but not the energy frontier",
                p.key
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// A pre-ledger (schema-less) `sweep.jsonl` prefix is rejected on resume
/// with the dedicated schema error, not a field-level parse error and not a
/// silent divergence.
#[test]
fn resume_rejects_pre_ledger_jsonl_through_the_public_api() {
    let grid = SweepGrid {
        workloads: vec!["intruder".into()],
        processor_counts: vec![4],
        ..SweepGrid::smoke()
    };
    let dir = test_dir("oldschema");
    let outcome = run_sweep(&grid, EngineKind::FastForward, &dir, false).unwrap();
    let text = fs::read_to_string(&outcome.jsonl_path).unwrap();
    let stripped: String = text
        .lines()
        .map(|l| format!("{}\n", l.replacen("\"schema\":2,", "", 1)))
        .collect();
    assert_ne!(stripped, text);
    fs::write(&outcome.jsonl_path, stripped).unwrap();
    let err = run_sweep(&grid, EngineKind::FastForward, &dir, true).unwrap_err();
    assert!(
        matches!(
            err,
            sweep::SweepError::SchemaMismatch {
                line: 1,
                found: None,
                ..
            }
        ),
        "{err}"
    );
    assert!(err.to_string().contains("record layout changed"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}
