//! End-to-end sensitivity-sweep tests through the umbrella crate: grid →
//! runner → JSONL/Pareto artifacts, including resume and engine agreement.

use std::fs;
use std::path::PathBuf;

use clock_gate_on_abort::core::sim::EngineKind;
use clock_gate_on_abort::core::sweep::{
    self, dominates, pareto_frontiers, run_sweep, CellRecord, SweepGrid,
};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cgoa-sweep-e2e-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn smoke_sweep_end_to_end() {
    let grid = SweepGrid::smoke();
    let dir = test_dir("smoke");
    let outcome = run_sweep(&grid, EngineKind::FastForward, &dir, false).unwrap();
    assert_eq!(outcome.records.len(), grid.expand().len());
    assert_eq!(outcome.skipped, 0);

    // Every slice has a non-empty frontier and the frontier is a subset of
    // the slice's cells.
    assert!(!outcome.frontiers.is_empty());
    for f in &outcome.frontiers {
        assert!(
            !f.frontier.is_empty(),
            "{}@{} frontier",
            f.workload,
            f.procs
        );
        assert_eq!(f.frontier.len() + f.dominated.len(), f.cells);
        // No frontier point dominates another frontier point.
        for a in &f.frontier {
            for b in &f.frontier {
                assert!(!dominates(a, b), "{} dominates {}", a.key, b.key);
            }
        }
    }

    // The JSONL artifact parses back into exactly the records the runner
    // reported, in the same order.
    let text = fs::read_to_string(&outcome.jsonl_path).unwrap();
    let parsed: Vec<CellRecord> = text
        .lines()
        .map(|line| CellRecord::from_value(&serde_json::from_str(line).unwrap()).unwrap())
        .collect();
    assert_eq!(parsed, outcome.records);

    // Recomputing the frontiers from the parsed records reproduces the
    // artifact's frontiers.
    assert_eq!(pareto_frontiers(&parsed), outcome.frontiers);

    // A second, resumed invocation executes nothing and leaves every
    // artifact byte-identical.
    let before = fs::read(&outcome.pareto_path).unwrap();
    let resumed = run_sweep(&grid, EngineKind::FastForward, &dir, true).unwrap();
    assert_eq!(resumed.executed, 0);
    assert_eq!(fs::read(&resumed.pareto_path).unwrap(), before);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sweep_artifacts_are_engine_independent() {
    let grid = SweepGrid {
        workloads: vec!["yada".into()],
        ..SweepGrid::smoke()
    };
    let dir_fast = test_dir("fast");
    let dir_naive = test_dir("naive");
    run_sweep(&grid, EngineKind::FastForward, &dir_fast, false).unwrap();
    run_sweep(&grid, EngineKind::Naive, &dir_naive, false).unwrap();
    for name in [
        sweep::runner::JSONL_NAME,
        sweep::runner::PARETO_NAME,
        sweep::runner::SUMMARY_NAME,
    ] {
        assert_eq!(
            fs::read(dir_fast.join(name)).unwrap(),
            fs::read(dir_naive.join(name)).unwrap(),
            "{name} must be byte-identical across engines"
        );
    }
    let _ = fs::remove_dir_all(&dir_fast);
    let _ = fs::remove_dir_all(&dir_naive);
}
