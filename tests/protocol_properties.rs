//! Property-based tests of the TCC substrate and the gating protocol driven
//! through randomly generated workloads.

use proptest::prelude::*;

use clockgate_htm::sim::{GatingMode, SimulationBuilder};
use htm_workloads::spec::{Range, SyntheticSpec};
use htm_workloads::WorkloadScale;

/// A random (but small) synthetic workload specification.
fn arb_spec() -> impl Strategy<Value = SyntheticSpec> {
    (
        1u64..8,     // hot lines
        8u64..64,    // cold lines
        4u64..32,    // private lines
        1usize..4,   // static transactions
        1u64..6,     // max reads
        1u64..4,     // max writes
        0.0f64..0.8, // hot write probability
        0.0f64..0.9, // site RMW probability
        0u64..1_000_000,
    )
        .prop_map(
            |(hot, cold, private, static_txs, reads, writes, hot_w, site, seed)| SyntheticSpec {
                name: "prop-workload".into(),
                seed,
                hot_lines: hot,
                cold_lines: cold,
                private_lines: private,
                txs_per_thread: 6,
                static_txs,
                reads_per_tx: Range::new(1, reads),
                writes_per_tx: Range::new(1, writes),
                hot_read_prob: hot_w * 0.8,
                hot_write_prob: hot_w,
                shared_cold_prob: 0.5,
                compute_between_ops: Range::new(1, 6),
                pre_compute: Range::new(0, 20),
                site_rmw_prob: site,
                tx_id_base: 0x8_0000,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Liveness + exactness: whatever the workload looks like, every
    /// transaction commits exactly once, with and without clock gating, and
    /// the cycle accounting stays consistent.
    #[test]
    fn random_workloads_commit_everything(spec in arb_spec(), procs in prop::sample::select(vec![2usize, 4])) {
        let workload = spec.generate(procs, WorkloadScale::Full);
        let expected = workload.total_transactions() as u64;
        for mode in [GatingMode::Ungated, GatingMode::ClockGate { w0: 8 }] {
            let report = SimulationBuilder::new()
                .processors(procs)
                .workload(workload.clone())
                .gating(mode)
                .cycle_limit(20_000_000)
                .run()
                .unwrap();
            prop_assert_eq!(report.outcome.total_commits, expected);
            prop_assert!(report.outcome.check_consistency().is_ok());
            prop_assert!(report.energy.accounting_discrepancy() < 1e-9);
            if matches!(mode, GatingMode::Ungated) {
                prop_assert_eq!(report.outcome.total_gated_cycles(), 0);
            }
        }
    }

    /// The simulation is a pure function of (config, workload, mode).
    #[test]
    fn random_workloads_are_deterministic(spec in arb_spec()) {
        let workload = spec.generate(2, WorkloadScale::Full);
        let run = || {
            SimulationBuilder::new()
                .processors(2)
                .workload(workload.clone())
                .gating(GatingMode::ClockGate { w0: 4 })
                .cycle_limit(20_000_000)
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.outcome.total_cycles, b.outcome.total_cycles);
        prop_assert_eq!(a.outcome.total_aborts, b.outcome.total_aborts);
        prop_assert_eq!(a.outcome.state_cycles, b.outcome.state_cycles);
    }
}
