//! Workspace-surface smoke test: everything a downstream consumer touches —
//! the umbrella re-exports, the default experiment configuration and one
//! tiny end-to-end simulation — works from a clean build.

use clock_gate_on_abort::core::experiments::ExperimentConfig;
use clock_gate_on_abort::core::sim::{compare_runs, GatingMode, SimulationBuilder};
use clock_gate_on_abort::power::model::PowerModel;
use clock_gate_on_abort::workloads::{workload_names, WorkloadScale};

/// The default configuration is the paper's evaluation matrix.
#[test]
fn default_experiment_config_matches_paper() {
    let cfg = ExperimentConfig::default();
    assert_eq!(cfg.processor_counts, vec![4, 8, 16]);
    assert_eq!(cfg.w0, 8);
    assert_eq!(
        cfg.workloads,
        vec![
            "genome".to_string(),
            "yada".to_string(),
            "intruder".to_string()
        ]
    );
    for w in &cfg.workloads {
        assert!(
            workload_names().iter().any(|n| n == w),
            "default workload {w} must be registered"
        );
    }
}

/// One tiny simulation through the umbrella re-exports produces non-zero
/// cycles and non-zero energy, both gated and ungated.
#[test]
fn tiny_simulation_has_cycles_and_energy() {
    let run = |mode| {
        SimulationBuilder::new()
            .processors(4)
            .workload_by_name("intruder", WorkloadScale::Test, 42)
            .expect("intruder is a known workload")
            .gating(mode)
            .run()
            .expect("tiny simulation must complete")
    };
    let ungated = run(GatingMode::Ungated);
    let gated = run(GatingMode::ClockGate { w0: 8 });

    for report in [&ungated, &gated] {
        assert!(report.outcome.total_cycles > 0);
        assert!(report.outcome.total_commits > 0);
        assert!(report.energy.total_energy > 0.0);
        assert!(report.outcome.check_consistency().is_ok());
    }
    assert_eq!(ungated.outcome.total_gated_cycles(), 0);

    let cmp = compare_runs(&ungated, &gated);
    assert!(cmp.speedup.is_finite());
}

/// The re-exported power model carries the paper's Table I factors.
#[test]
fn power_model_reexport_is_table1() {
    let model = PowerModel::alpha_21264_65nm();
    let json = clock_gate_on_abort::core::report::to_json(&model);
    assert!(
        json.contains('{'),
        "power model must serialize to JSON: {json}"
    );
}
