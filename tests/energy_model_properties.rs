//! Property-based tests of the power / energy model (Section IV and VII) and
//! of the contention-management staircase (Eq. 8).

use proptest::prelude::*;

use clockgate_htm::gating::contention::{pow2_ceil_lg, ContentionPolicy, GatingAwarePolicy};
use htm_power::cache_power::CachePowerModel;
use htm_power::energy;
use htm_power::ledger::{self, UncoreActivity};
use htm_power::model::{PowerModel, PowerModelConfig};
use htm_sim::interval::IntervalTracker;
use htm_tcc::stats::{ProcStats, RunOutcome, StateCycles};

/// Build a consistent synthetic outcome from per-processor state cycles where
/// every processor has the same per-cycle composition.
fn outcome_from_columns(columns: Vec<(u64, u64, u64, u64)>) -> RunOutcome {
    // Interpret each column as one *cycle block* applied to all processors:
    // (run procs, miss procs, commit procs, gated procs) for `1` cycle each.
    let num_procs: u64 = columns
        .iter()
        .map(|c| c.0 + c.1 + c.2 + c.3)
        .max()
        .unwrap_or(1);
    let num_procs = num_procs.max(1) as usize;
    let mut state_cycles = vec![StateCycles::default(); num_procs];
    let mut intervals = IntervalTracker::new(num_procs);
    let mut total = 0u64;
    for (run, miss, commit, gated) in columns {
        let sum = (run + miss + commit + gated) as usize;
        if sum == 0 || sum > num_procs {
            continue;
        }
        total += 1;
        // Assign states to processors 0..sum-1, the rest run.
        let mut idx = 0usize;
        for _ in 0..miss {
            state_cycles[idx].miss += 1;
            idx += 1;
        }
        for _ in 0..commit {
            state_cycles[idx].commit += 1;
            idx += 1;
        }
        for _ in 0..gated {
            state_cycles[idx].gated += 1;
            idx += 1;
        }
        while idx < num_procs {
            state_cycles[idx].run += 1;
            idx += 1;
        }
        intervals.record(1, gated as usize, miss as usize, commit as usize);
    }
    RunOutcome {
        workload: "prop".into(),
        num_procs,
        total_cycles: total,
        first_tx_start: 0,
        last_commit_end: total,
        state_cycles,
        proc_stats: vec![ProcStats::new(); num_procs],
        intervals,
        bus: htm_sim::bus::BusStats::default(),
        shard_bus: Vec::new(),
        dir_stats: Vec::new(),
        total_commits: 1,
        total_aborts: 0,
        total_gatings: 0,
    }
}

proptest! {
    /// Eq. (1)/(5) evaluated from the interval decomposition must equal the
    /// direct per-processor accounting for any composition of states.
    #[test]
    fn interval_and_direct_accountings_agree(
        columns in proptest::collection::vec((0u64..4, 0u64..4, 0u64..4, 0u64..4), 1..60)
    ) {
        let outcome = outcome_from_columns(columns);
        prop_assume!(outcome.total_cycles > 0);
        let model = PowerModel::alpha_21264_65nm();
        let report = energy::analyze(&outcome, &model);
        prop_assert!(report.accounting_discrepancy() < 1e-9,
            "discrepancy {} on {:?}", report.accounting_discrepancy(), outcome.state_cycles);
    }

    /// The component ledger's core subset must reproduce both the legacy
    /// direct accounting and the Eq. 1/Eq. 5 interval formulation for any
    /// composition of states, on any point of the leakage-share axis.
    #[test]
    fn ledger_components_sum_to_legacy_and_interval_accountings(
        columns in proptest::collection::vec((0u64..4, 0u64..4, 0u64..4, 0u64..4), 1..60),
        leakage_percent in 1u64..60,
    ) {
        let outcome = outcome_from_columns(columns);
        prop_assume!(outcome.total_cycles > 0);
        let cfg = PowerModelConfig::alpha_21264_65nm()
            .with_leakage_share(leakage_percent as f64 / 100.0);
        let legacy = energy::analyze(&outcome, &cfg.factors());
        let report = ledger::analyze(&outcome, &cfg, UncoreActivity::default());
        prop_assert!(report.core_discrepancy() < 1e-12,
            "core {} vs legacy {} at leakage {leakage_percent}%",
            report.core_energy, report.legacy_total);
        prop_assert_eq!(report.legacy_total, legacy.total_energy);
        prop_assert_eq!(report.interval_total, legacy.total_energy_interval);
        prop_assert!(report.interval_discrepancy() < 1e-9);
        // With no uncore activity the ledger total IS the core total, and
        // the per-processor core energies sum to it.
        prop_assert_eq!(report.uncore_energy, 0.0);
        let per_proc_sum: f64 = report.per_proc_core.iter().sum();
        let tol = 1e-9 * report.core_energy.max(1.0);
        prop_assert!((per_proc_sum - report.core_energy).abs() <= tol);
    }

    /// Converting run cycles into gated cycles can only reduce energy, never
    /// increase it (gated power is the smallest factor).
    #[test]
    fn gating_cycles_never_increase_energy(
        run in 1u64..100_000,
        gated_fraction in 0u64..=100,
    ) {
        let model = PowerModel::alpha_21264_65nm();
        let total = run;
        let gated = total * gated_fraction / 100;
        let busy = total - gated;
        let all_run = outcome_from_columns(vec![(1, 0, 0, 0); total as usize]);
        let mut partly_gated_cols = vec![(1u64, 0u64, 0u64, 0u64); busy as usize];
        partly_gated_cols.extend(vec![(0u64, 0u64, 0u64, 1u64); gated as usize]);
        let partly_gated = outcome_from_columns(partly_gated_cols);
        let e_run = energy::analyze(&all_run, &model).total_energy;
        let e_gated = energy::analyze(&partly_gated, &model).total_energy;
        prop_assert!(e_gated <= e_run + 1e-9);
    }

    /// The Eq. 8 window is monotone in both counters and scales linearly in W0.
    #[test]
    fn staircase_window_is_monotone(w0 in 1u64..64, na in 1u32..200, nr in 0u32..200) {
        let p = GatingAwarePolicy::new(w0);
        prop_assert!(p.window(0, na + 1, nr) >= p.window(0, na, nr));
        prop_assert!(p.window(0, na, nr + 1) >= p.window(0, na, nr));
        let doubled = GatingAwarePolicy::new(w0 * 2);
        prop_assert_eq!(doubled.window(0, na, nr), 2 * p.window(0, na, nr));
    }

    /// `2^ceil(lg n)` is the smallest power of two >= n.
    #[test]
    fn pow2_ceil_lg_is_tight(n in 1u32..1_000_000) {
        let p = pow2_ceil_lg(n);
        prop_assert!(p.is_power_of_two());
        prop_assert!(p >= u64::from(n));
        prop_assert!(p / 2 < u64::from(n));
    }

    /// Finer RW-bit tracking always costs more cache power (Fig. 3 curves are
    /// monotone), and every point stays above the normalized baseline.
    #[test]
    fn cache_power_monotone_in_resolution(kb in prop::sample::select(vec![16usize, 32, 64, 128])) {
        let m = CachePowerModel::new_kb(kb);
        let series = m.fig3_series();
        for w in series.windows(2) {
            prop_assert!(w[1].1 > w[0].1);
        }
        for (_, p) in series {
            prop_assert!(p >= 100.0);
        }
    }
}
