//! Golden-fixture gate: the six legacy contention policies must produce
//! **byte-identical** smoke artifacts through the pluggable-policy framework.
//!
//! The fixtures under `tests/golden/` were captured from the pre-framework
//! enum dispatch (plus the `backoff` cap-label fix, which landed first and
//! deliberately changed the back-off labels), by running
//!
//! ```bash
//! reproduce --smoke --out tests/golden/reproduce
//! sweep --grid smoke --out tests/golden/sweep
//! ```
//!
//! This suite regenerates the same artifacts through the library (registry →
//! boxed `PolicyHook` dispatch) and compares bytes, proving the refactor is
//! observationally identical. CI additionally re-runs the binaries on both
//! engines and `cmp`s their outputs against these fixtures.
//!
//! `tests/golden/trace/` extends the gate to the trace subsystem: a
//! committed `htmtrace` file (recorded via `reproduce --record-trace --from
//! intruder:4:test:42`) plus the matrix and sweep artifacts a traced run
//! produces from it. The trace fixture pins the on-disk format byte for
//! byte; the artifact fixtures pin the traced execution path.

use std::fs;
use std::path::{Path, PathBuf};

use clock_gate_on_abort::core::experiments::{self, ExperimentConfig};
use clock_gate_on_abort::core::report::to_json;
use clock_gate_on_abort::core::sim::EngineKind;
use clock_gate_on_abort::core::sweep::{
    run_sweep, run_sweep_ckpt_traced, SweepGrid, SweepObjective, TraceWorkload,
};
use clock_gate_on_abort::power::model::PowerModel;
use clock_gate_on_abort::sim::topology::TopologyConfig;
use clock_gate_on_abort::workloads::{trace, WorkloadScale};

fn golden_dir(sub: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(sub)
}

fn golden(sub: &str, name: &str) -> String {
    let path = golden_dir(sub).join(name);
    fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()))
}

/// The `reproduce --smoke` experiment configuration (kept in sync with the
/// binary's `--smoke` branch).
fn smoke_config() -> ExperimentConfig {
    ExperimentConfig {
        processor_counts: vec![4],
        scale: WorkloadScale::Test,
        ..ExperimentConfig::default()
    }
}

#[test]
fn smoke_sweep_artifacts_match_the_golden_fixture() {
    let dir = std::env::temp_dir().join(format!("clockgate-golden-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let outcome = run_sweep(&SweepGrid::smoke(), EngineKind::FastForward, &dir, false)
        .expect("smoke sweep must run");
    for (path, name) in [
        (&outcome.jsonl_path, "sweep.jsonl"),
        (&outcome.pareto_path, "pareto.json"),
        (&outcome.summary_path, "sweep_summary.json"),
        (&outcome.breakdown_path, "energy_breakdown.json"),
    ] {
        let produced = fs::read_to_string(path).unwrap();
        assert_eq!(
            produced,
            golden("sweep", name),
            "{name} diverged from the pre-refactor golden fixture"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn smoke_matrix_artifacts_match_the_golden_fixture() {
    let cfg = smoke_config();
    let (matrix, _timing, breakdown) =
        experiments::run_matrix_timed(&cfg, EngineKind::FastForward).expect("smoke matrix");
    assert_eq!(
        to_json(&matrix),
        golden("reproduce", "evaluation_matrix.json"),
        "evaluation_matrix.json diverged from the golden fixture"
    );
    assert_eq!(
        to_json(&experiments::summary(&matrix)),
        golden("reproduce", "summary.json")
    );
    assert_eq!(
        to_json(&breakdown),
        golden("reproduce", "energy_breakdown.json")
    );
}

#[test]
fn static_table_artifacts_match_the_golden_fixture() {
    assert_eq!(
        to_json(&PowerModel::alpha_21264_65nm()),
        golden("reproduce", "table1_power_model.json"),
        "Table I must stay the four-factor paper model (the throttled state \
         is a derived method, not a fifth serialized row)"
    );
    assert_eq!(
        to_json(&experiments::fig3()),
        golden("reproduce", "fig3_cache_power.json")
    );
}

/// Load the committed golden trace fixture
/// (`intruder --record-trace --from intruder:4:test:42`).
fn golden_trace() -> (String, trace::LoadedTrace) {
    let text = golden("trace", "intruder-4p-test-s42.trace");
    let loaded = trace::read_from(text.as_bytes()).expect("the golden trace parses");
    (text, loaded)
}

#[test]
fn golden_trace_fixture_round_trips_byte_identically() {
    let (text, loaded) = golden_trace();
    // The committed file is exactly what the writer emits for its content —
    // pins the on-disk format, not just the parsed value.
    assert_eq!(
        trace::render(&loaded.workload),
        text,
        "re-rendering the golden trace must reproduce the committed bytes"
    );
    // And it is exactly the generator's workload: the recorded provenance
    // (intruder, 4 procs, Test scale, seed 42) still produces these bytes.
    let regenerated =
        clock_gate_on_abort::workloads::by_name("intruder", 4, WorkloadScale::Test, 42).unwrap();
    assert_eq!(loaded.workload, regenerated);
    assert_eq!(loaded.fingerprint, regenerated.fingerprint());
}

#[test]
fn golden_trace_matrix_artifacts_match_the_fixture() {
    // The library-side twin of `reproduce --trace <fixture> --out ...`:
    // same config surgery the binary performs, compared byte for byte.
    let (_, loaded) = golden_trace();
    let tw = TraceWorkload::from_loaded(&loaded);
    let cfg = ExperimentConfig {
        processor_counts: vec![loaded.workload.num_threads()],
        workloads: vec![tw.axis_name.clone()],
        ..ExperimentConfig::default()
    };
    let (matrix, _timing, breakdown) = experiments::run_matrix_timed_ckpt_traced(
        &cfg,
        EngineKind::FastForward,
        TopologyConfig::Bus,
        None,
        Some(&tw),
    )
    .expect("traced smoke matrix");
    assert_eq!(
        to_json(&matrix),
        golden("trace", "evaluation_matrix.json"),
        "traced evaluation_matrix.json diverged from the golden fixture"
    );
    assert_eq!(
        to_json(&experiments::summary(&matrix)),
        golden("trace", "summary.json")
    );
    assert_eq!(
        to_json(&breakdown),
        golden("trace", "energy_breakdown.json")
    );
}

#[test]
fn golden_trace_sweep_records_match_the_fixture() {
    let (_, loaded) = golden_trace();
    let tw = TraceWorkload::from_loaded(&loaded);
    let grid = SweepGrid::for_trace(&tw.axis_name, loaded.workload.num_threads());
    let dir = std::env::temp_dir().join(format!("clockgate-golden-trace-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let outcome = run_sweep_ckpt_traced(
        &grid,
        EngineKind::FastForward,
        &dir,
        false,
        SweepObjective::Energy,
        TopologyConfig::Bus,
        None,
        Some(&tw),
    )
    .expect("traced smoke sweep");
    let produced = fs::read_to_string(&outcome.jsonl_path).unwrap();
    assert_eq!(
        produced,
        golden("trace", "sweep.jsonl"),
        "traced sweep.jsonl diverged from the golden fixture"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn smoke_fig7_matches_the_golden_fixture() {
    let cfg = smoke_config();
    let f = experiments::fig7_with_engine(&cfg, &[1, 2, 4, 8, 16, 32, 64], EngineKind::FastForward)
        .expect("fig7 smoke sweep");
    assert_eq!(to_json(&f), golden("reproduce", "fig7_w0_sensitivity.json"));
}
